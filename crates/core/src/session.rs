//! Session files: persist recordings for offline analysis.
//!
//! "Checkpoints can be stored indefinitely, if the user wants the entire
//! history recorded… the recorded history can be used for forensics or to
//! audit prior executions" (§8.4). A session file packages everything a
//! replayer needs — the VM specification (kernel + images + boot table +
//! device profile), the recording configuration, the input log, and the
//! final-state digest — so an execution recorded today can be audited,
//! re-replayed, and alarm-resolved at any later time, on any machine.
//!
//! ## Format
//!
//! ```text
//! magic "RNRSAFE1" | u64 header_len | header (JSON) | raw input log bytes
//! ```
//!
//! The header is JSON for inspectability (`rnr info` pretty-prints it); the
//! log uses its exact binary codec.

use std::fmt;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

use rnr_hypervisor::{RecordMode, RecordOutcome, VmSpec};
use rnr_log::InputLog;
use rnr_machine::Digest;

const MAGIC: &[u8; 8] = b"RNRSAFE1";

/// Session-file errors.
#[derive(Debug)]
pub enum SessionError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not a session file or is corrupt.
    Malformed(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Io(e) => write!(f, "session I/O error: {e}"),
            SessionError::Malformed(m) => write!(f, "malformed session file: {m}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<std::io::Error> for SessionError {
    fn from(e: std::io::Error) -> SessionError {
        SessionError::Io(e)
    }
}

/// The JSON header of a session file.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SessionHeader {
    /// Format version.
    pub version: u32,
    /// The guest VM specification (kernel, images, boot table, devices).
    pub spec: VmSpec,
    /// Recording mode (always [`RecordMode::Rec`] for stored sessions).
    pub mode: RecordMode,
    /// Non-determinism seed used.
    pub seed: u64,
    /// RAS capacity used.
    pub ras_capacity: usize,
    /// Instructions recorded.
    pub retired: u64,
    /// Virtual cycles of the recording.
    pub cycles: u64,
    /// Alarms in the log.
    pub alarms: usize,
    /// Final architectural digest (replay verification target).
    pub final_digest: u64,
    /// Log size in bytes (must match the trailing payload).
    pub log_bytes: u64,
}

/// A persisted recording session.
#[derive(Debug)]
pub struct Session {
    /// The header metadata.
    pub header: SessionHeader,
    /// The input log, shared so replayers can attach without copying it.
    pub log: Arc<InputLog>,
}

impl Session {
    /// Packages a recording outcome for persistence.
    pub fn from_recording(spec: VmSpec, seed: u64, ras_capacity: usize, outcome: &RecordOutcome) -> Session {
        Session {
            header: SessionHeader {
                version: 1,
                spec,
                mode: RecordMode::Rec,
                seed,
                ras_capacity,
                retired: outcome.retired,
                cycles: outcome.cycles,
                alarms: outcome.alarms,
                final_digest: outcome.final_digest.0,
                log_bytes: outcome.log.total_bytes(),
            },
            log: Arc::clone(&outcome.log),
        }
    }

    /// The digest the replayer must reproduce.
    pub fn expected_digest(&self) -> Digest {
        Digest(self.header.final_digest)
    }

    /// Writes the session to `path`.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SessionError> {
        let header = serde_json::to_vec(&self.header).map_err(|e| SessionError::Malformed(e.to_string()))?;
        let mut file = std::fs::File::create(path)?;
        file.write_all(MAGIC)?;
        file.write_all(&(header.len() as u64).to_le_bytes())?;
        file.write_all(&header)?;
        file.write_all(&self.log.to_bytes())?;
        Ok(())
    }

    /// Reads a session from `path`.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, bad magic, or a log that does not match the
    /// header's byte count.
    pub fn load(path: impl AsRef<Path>) -> Result<Session, SessionError> {
        let mut file = std::fs::File::open(path)?;
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(SessionError::Malformed("bad magic".to_string()));
        }
        let mut len = [0u8; 8];
        file.read_exact(&mut len)?;
        let header_len = u64::from_le_bytes(len);
        // The header is JSON metadata plus the embedded images; anything
        // beyond this bound is a corrupt or hostile file, not a session.
        const MAX_HEADER: u64 = 256 << 20;
        if header_len > MAX_HEADER {
            return Err(SessionError::Malformed(format!("header length {header_len} exceeds {MAX_HEADER}")));
        }
        let mut header_bytes = vec![0u8; header_len as usize];
        file.read_exact(&mut header_bytes)?;
        let header: SessionHeader =
            serde_json::from_slice(&header_bytes).map_err(|e| SessionError::Malformed(e.to_string()))?;
        let mut log_bytes = Vec::new();
        file.read_to_end(&mut log_bytes)?;
        if log_bytes.len() as u64 != header.log_bytes {
            return Err(SessionError::Malformed(format!(
                "log payload is {} bytes, header says {}",
                log_bytes.len(),
                header.log_bytes
            )));
        }
        let log = InputLog::from_bytes(log_bytes.into())
            .map_err(|e| SessionError::Malformed(format!("log decode: {e}")))?;
        Ok(Session { header, log: Arc::new(log) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnr_hypervisor::{RecordConfig, Recorder};
    use rnr_workloads::Workload;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rnr-session-test-{}-{name}.rnr", std::process::id()));
        p
    }

    #[test]
    fn save_load_round_trip_and_replay() {
        let spec = Workload::Radiosity.spec(false);
        let rec = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, 11, 80_000)).unwrap().run();
        let session = Session::from_recording(spec, 11, 48, &rec);
        let path = tmpfile("roundtrip");
        session.save(&path).unwrap();

        let loaded = Session::load(&path).unwrap();
        assert_eq!(loaded.header.retired, rec.retired);
        assert_eq!(loaded.log.records(), rec.log.records());
        assert_eq!(loaded.expected_digest(), rec.final_digest);

        // A replay built purely from the file verifies.
        let mut r =
            rnr_replay::Replayer::new(&loaded.header.spec, loaded.log, rnr_replay::ReplayConfig::default());
        r.verify_against(rnr_machine::Digest(loaded.header.final_digest));
        let out = r.run().unwrap();
        assert_eq!(out.verified, Some(true));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_magic_rejected() {
        let path = tmpfile("magic");
        std::fs::write(&path, b"NOTASESSIONFILE").unwrap();
        assert!(matches!(Session::load(&path), Err(SessionError::Malformed(_))));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_payload_rejected() {
        let spec = Workload::Radiosity.spec(false);
        let rec = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, 11, 50_000)).unwrap().run();
        let session = Session::from_recording(spec, 11, 48, &rec);
        let path = tmpfile("trunc");
        session.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        assert!(matches!(Session::load(&path), Err(SessionError::Malformed(_))));
        std::fs::remove_file(path).ok();
    }
}
