//! # rnr-safe: Record-and-Replay as a General Security Framework
//!
//! The top-level crate of the RnR-Safe reproduction (HPCA 2018). It wires
//! the full Figure 1 organization into one [`Pipeline`]:
//!
//! ```text
//!  Recorded VM ──inputs──▶ input log ──▶ Checkpointing Replayer ──alarms──▶ Alarm Replayer(s)
//!  (imprecise RAS HW)                    (always on, ~record speed)        (on demand, heavyweight)
//! ```
//!
//! * The **recorded VM** runs a workload under the monitoring hypervisor
//!   (`rnr-hypervisor`): all non-deterministic inputs go to the log, and
//!   the cheap-and-noisy hardware detectors insert *alarm* markers — the
//!   extended RAS for control-flow hijacks (DESIGN.md §5) and, when armed,
//!   the VRT memory-safety tables (`rnr-vrt`, DESIGN.md §15).
//! * The **checkpointing replayer** (`rnr-replay`) re-executes the log
//!   deterministically (verified bit-exact), takes incremental
//!   copy-on-write checkpoints, and discards underflow alarms that match
//!   evict records — serially, or partitioned across checkpoint spans
//!   (`parallel_spans`), with the same byte-identical report either way.
//! * Each surviving alarm is handed to an **alarm replayer**, which traps
//!   every call/return, models an unbounded software RAS (or replays the
//!   guest's precise allocation table for VRT cases), and returns a
//!   [`Verdict`]: classified false positive, a characterized ROP attack,
//!   or a convicted memory-safety violation.
//!
//! ## Quickstart
//!
//! ```
//! use rnr_safe::{Pipeline, PipelineConfig};
//! use rnr_workloads::Workload;
//!
//! # fn main() -> Result<(), rnr_safe::PipelineError> {
//! let spec = Workload::Mysql.spec(false);
//! let config = PipelineConfig { duration_insns: 200_000, ..PipelineConfig::default() };
//! let report = Pipeline::new(spec, config).run()?;
//! assert!(report.replay.verified);
//! assert_eq!(report.attacks_confirmed(), 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod farm;
mod pipeline;
mod session;
pub mod table2;

pub use farm::{
    BudgetKind, Farm, FarmConfig, FarmError, FarmReport, SessionBudget, SessionId, SessionOutcome,
    SessionSpec,
};
pub use pipeline::{
    AlarmResolution, DetectionWindow, FailedCase, Pipeline, PipelineConfig, PipelineError, PipelineReport,
    RecordSummary, RecoveryReport, ReplaySummary, VerdictSummary,
};
pub use session::{Session, SessionError, SessionHeader};

// Re-export the crates downstream users need alongside the facade.
pub use rnr_attacks as attacks;
pub use rnr_guest as guest;
pub use rnr_hypervisor as hypervisor;
pub use rnr_isa as isa;
pub use rnr_log as log;
pub use rnr_machine as machine;
pub use rnr_ras as ras;
pub use rnr_replay as replay;
pub use rnr_replay::{Verdict, VIRTUAL_HZ};
pub use rnr_vrt as vrt;
pub use rnr_workloads as workloads;
