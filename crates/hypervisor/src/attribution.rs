//! Per-category cycle attribution (Figures 5(b) and 7(b)).

use std::collections::HashMap;

use rnr_log::Category;

/// Extra attribution bucket for checkpoint creation (`Chk` in Figure 7(b)).
/// Checkpointing is not a log category, so it is tracked separately.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CycleAttribution {
    by_category: HashMap<Category, u64>,
    checkpoint: u64,
}

impl CycleAttribution {
    /// An empty attribution.
    pub fn new() -> CycleAttribution {
        CycleAttribution::default()
    }

    /// Charges `cycles` to `category`.
    pub fn charge(&mut self, category: Category, cycles: u64) {
        *self.by_category.entry(category).or_insert(0) += cycles;
    }

    /// Charges checkpoint-creation cycles (the `Chk` bucket of Figure 7(b)).
    pub fn charge_checkpoint(&mut self, cycles: u64) {
        self.checkpoint += cycles;
    }

    /// Cycles charged to one category.
    pub fn for_category(&self, category: Category) -> u64 {
        self.by_category.get(&category).copied().unwrap_or(0)
    }

    /// Checkpoint-creation cycles.
    pub fn checkpoint(&self) -> u64 {
        self.checkpoint
    }

    /// Total overhead cycles across all buckets.
    pub fn total(&self) -> u64 {
        self.by_category.values().sum::<u64>() + self.checkpoint
    }

    /// Per-category difference against a baseline run (e.g. `Rec − NoRec`
    /// for Figure 5(b)), clamped at zero.
    pub fn overhead_vs(&self, baseline: &CycleAttribution) -> CycleAttribution {
        let mut out = CycleAttribution::new();
        for c in Category::ALL {
            let d = self.for_category(c).saturating_sub(baseline.for_category(c));
            if d > 0 {
                out.charge(c, d);
            }
        }
        out.checkpoint = self.checkpoint.saturating_sub(baseline.checkpoint);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates() {
        let mut a = CycleAttribution::new();
        a.charge(Category::Rdtsc, 100);
        a.charge(Category::Rdtsc, 50);
        a.charge_checkpoint(10);
        assert_eq!(a.for_category(Category::Rdtsc), 150);
        assert_eq!(a.total(), 160);
    }

    #[test]
    fn overhead_vs_subtracts_and_clamps() {
        let mut rec = CycleAttribution::new();
        rec.charge(Category::Interrupt, 1000);
        rec.charge(Category::PioMmio, 100);
        let mut norec = CycleAttribution::new();
        norec.charge(Category::Interrupt, 200);
        norec.charge(Category::PioMmio, 150);
        let d = rec.overhead_vs(&norec);
        assert_eq!(d.for_category(Category::Interrupt), 800);
        assert_eq!(d.for_category(Category::PioMmio), 0);
    }
}
