//! Virtual device models (the QEMU-userspace devices of the paper's setup).

use std::collections::VecDeque;

use rnr_guest::layout::{NIC_MTU, NIC_RX_BUF};
use rnr_isa::Addr;
use rnr_machine::{
    BlockStore, GuestVm, DISK_CMD_READ, DISK_CMD_WRITE, PORT_DISK_ADDR, PORT_DISK_CMD, PORT_DISK_COUNT,
    PORT_DISK_SECTOR, SECTOR_SIZE,
};

/// An in-flight disk operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskOp {
    /// [`DISK_CMD_READ`] or [`DISK_CMD_WRITE`].
    pub cmd: u64,
    /// First sector.
    pub sector: u64,
    /// Guest physical DMA address.
    pub addr: Addr,
    /// Sector count.
    pub count: u64,
    /// Virtual cycle at which the completion interrupt fires (set by the
    /// recorder from the latency model; unused during replay, where the
    /// logged interrupt record supplies the timing).
    pub complete_at: u64,
}

/// The virtual disk controller: PIO-latched requests, DMA transfers against
/// a [`BlockStore`], one operation in flight.
///
/// The disk is **deterministic** apart from completion timing: replayers run
/// their own replica and reproduce reads/writes bit-exactly, which is why
/// disk data never appears in the input log (only NIC payloads do).
#[derive(Debug, Clone)]
pub struct DiskDevice {
    store: BlockStore,
    sector: u64,
    addr: u64,
    count: u64,
    in_flight: Option<DiskOp>,
}

impl DiskDevice {
    /// A controller over a disk of `bytes` capacity, deterministically
    /// filled from `content_seed` (the "disk image").
    pub fn new(bytes: usize, content_seed: u64) -> DiskDevice {
        let mut store = BlockStore::new(bytes);
        store.fill_deterministic(content_seed);
        DiskDevice { store, sector: 0, addr: 0, count: 0, in_flight: None }
    }

    /// The backing store (checkpointed by the replayer).
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// Mutable access to the backing store (checkpoint restore).
    pub fn store_mut(&mut self) -> &mut BlockStore {
        &mut self.store
    }

    /// The operation in flight, if any.
    pub fn in_flight(&self) -> Option<DiskOp> {
        self.in_flight
    }

    /// Sets the completion time of the in-flight operation (the recorder's
    /// latency model decides it after the command write).
    ///
    /// # Panics
    ///
    /// Panics if no operation is in flight.
    pub fn set_complete_at(&mut self, cycle: u64) {
        self.in_flight.as_mut().expect("no in-flight disk op").complete_at = cycle;
    }

    /// Handles a PIO write to a disk port. A write to the command port
    /// starts an operation; the caller decides `complete_at` from its
    /// latency model and later calls [`DiskDevice::complete`].
    ///
    /// Returns `true` if an operation was started.
    pub fn handle_out(&mut self, port: u16, value: u64, complete_at: u64) -> bool {
        match port {
            PORT_DISK_SECTOR => self.sector = value,
            PORT_DISK_ADDR => self.addr = value,
            PORT_DISK_COUNT => self.count = value,
            PORT_DISK_CMD if value == DISK_CMD_READ || value == DISK_CMD_WRITE => {
                self.in_flight = Some(DiskOp {
                    cmd: value,
                    sector: self.sector,
                    addr: self.addr,
                    count: self.count,
                    complete_at,
                });
                return true;
            }
            _ => {}
        }
        false
    }

    /// Completes the in-flight operation: performs the DMA transfer against
    /// `vm`'s memory and returns the finished op. The caller injects the
    /// completion interrupt.
    ///
    /// # Panics
    ///
    /// Panics if no operation is in flight (hypervisor sequencing bug).
    pub fn complete(&mut self, vm: &mut GuestVm) -> DiskOp {
        let op = self.in_flight.take().expect("disk completion without an in-flight op");
        let mut buf = [0u8; SECTOR_SIZE];
        for i in 0..op.count {
            let sector = (op.sector + i) % self.store.sector_count();
            let guest = op.addr + i * SECTOR_SIZE as u64;
            if op.cmd == DISK_CMD_READ {
                self.store.read_sector(sector, &mut buf).expect("sector wrapped in range");
                // A DMA write that misses guest memory is dropped, as real
                // devices do on bad addresses.
                let _ = vm.mem_mut().write_bytes(guest, &buf);
            } else {
                if vm.mem().read_bytes(guest, &mut buf).is_err() {
                    buf.fill(0);
                }
                self.store.write_sector(sector, &buf).expect("sector wrapped in range");
            }
        }
        op
    }
}

/// The virtual NIC: a receive queue feeding a single-frame mailbox DMA'd
/// into the guest at [`NIC_RX_BUF`], plus a transmit capture buffer.
#[derive(Debug, Clone, Default)]
pub struct NicDevice {
    rx_queue: VecDeque<Vec<u8>>,
    mailbox_len: Option<u64>,
    tx_addr: u64,
    tx_len: u64,
    tx_frames: Vec<Vec<u8>>,
}

impl NicDevice {
    /// A NIC with empty queues.
    pub fn new() -> NicDevice {
        NicDevice::default()
    }

    /// Queues an arriving frame (recording side only).
    pub fn enqueue_rx(&mut self, payload: Vec<u8>) {
        self.rx_queue.push_back(payload);
    }

    /// Frames waiting behind the mailbox.
    pub fn rx_pending(&self) -> usize {
        self.rx_queue.len()
    }

    /// The mailbox frame length, as the guest's MMIO `RX_LEN` read sees it.
    pub fn mailbox_len(&self) -> u64 {
        self.mailbox_len.unwrap_or(0)
    }

    /// Delivers the next queued frame into the guest mailbox if it is free:
    /// pads the payload to the 32-byte DMA granule, writes it at
    /// [`NIC_RX_BUF`], and returns the padded bytes for logging. The caller
    /// injects `IRQ_NIC`.
    pub fn deliver(&mut self, vm: &mut GuestVm) -> Option<Vec<u8>> {
        if self.mailbox_len.is_some() {
            return None;
        }
        let mut frame = self.rx_queue.pop_front()?;
        let padded = frame.len().div_ceil(32) * 32;
        frame.resize(padded.min(NIC_MTU), 0);
        vm.mem_mut().write_bytes(NIC_RX_BUF, &frame).expect("mailbox in guest memory");
        self.mailbox_len = Some(frame.len() as u64);
        Some(frame)
    }

    /// Guest popped the mailbox (MMIO `RX_POP` write).
    pub fn pop_mailbox(&mut self) {
        self.mailbox_len = None;
    }

    /// Dequeues a raw frame, bypassing the mailbox (paravirtual receive).
    pub fn take_rx(&mut self) -> Option<Vec<u8>> {
        self.rx_queue.pop_front()
    }

    /// Handles a PIO write to a NIC transmit port; captures the frame on
    /// the command write.
    pub fn handle_out(&mut self, port: u16, value: u64, vm: &GuestVm) {
        use rnr_machine::{PORT_NIC_TX_ADDR, PORT_NIC_TX_CMD, PORT_NIC_TX_LEN};
        match port {
            PORT_NIC_TX_ADDR => self.tx_addr = value,
            PORT_NIC_TX_LEN => self.tx_len = value,
            PORT_NIC_TX_CMD => {
                let len = (self.tx_len as usize).min(NIC_MTU);
                let mut buf = vec![0u8; len];
                if vm.mem().read_bytes(self.tx_addr, &mut buf).is_ok() {
                    self.tx_frames.push(buf);
                }
            }
            _ => {}
        }
    }

    /// Transmit frames captured so far.
    pub fn tx_frames(&self) -> &[Vec<u8>] {
        &self.tx_frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnr_machine::MachineConfig;

    fn vm() -> GuestVm {
        GuestVm::new(MachineConfig::default(), &[])
    }

    #[test]
    fn disk_read_dmas_into_guest() {
        let mut vm = vm();
        let mut disk = DiskDevice::new(1 << 20, 42);
        disk.handle_out(PORT_DISK_SECTOR, 3, 0);
        disk.handle_out(PORT_DISK_ADDR, 0x2000, 0);
        disk.handle_out(PORT_DISK_COUNT, 2, 0);
        assert!(disk.handle_out(rnr_machine::PORT_DISK_CMD, DISK_CMD_READ, 500));
        assert_eq!(disk.in_flight().unwrap().complete_at, 500);
        let op = disk.complete(&mut vm);
        assert_eq!(op.count, 2);
        // Guest memory now matches the store contents.
        let mut expect = [0u8; SECTOR_SIZE];
        disk.store().read_sector(3, &mut expect).unwrap();
        let mut got = [0u8; SECTOR_SIZE];
        vm.mem().read_bytes(0x2000, &mut got).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn disk_write_updates_store() {
        let mut vm = vm();
        vm.mem_mut().write_bytes(0x4000, &[0xaa; SECTOR_SIZE]).unwrap();
        let mut disk = DiskDevice::new(1 << 20, 42);
        disk.handle_out(PORT_DISK_SECTOR, 7, 0);
        disk.handle_out(PORT_DISK_ADDR, 0x4000, 0);
        disk.handle_out(PORT_DISK_COUNT, 1, 0);
        disk.handle_out(rnr_machine::PORT_DISK_CMD, DISK_CMD_WRITE, 100);
        disk.complete(&mut vm);
        let mut got = [0u8; SECTOR_SIZE];
        disk.store().read_sector(7, &mut got).unwrap();
        assert_eq!(got, [0xaa; SECTOR_SIZE]);
    }

    #[test]
    fn identical_disks_have_identical_digests() {
        let a = DiskDevice::new(1 << 20, 9);
        let b = DiskDevice::new(1 << 20, 9);
        assert_eq!(a.store().digest(), b.store().digest());
        let c = DiskDevice::new(1 << 20, 10);
        assert_ne!(a.store().digest(), c.store().digest());
    }

    #[test]
    fn nic_mailbox_flow() {
        let mut vm = vm();
        let mut nic = NicDevice::new();
        nic.enqueue_rx(vec![1; 100]);
        nic.enqueue_rx(vec![2; 40]);
        let frame = nic.deliver(&mut vm).unwrap();
        assert_eq!(frame.len(), 128); // padded to 32-byte granule
        assert_eq!(nic.mailbox_len(), 128);
        // Mailbox occupied: second frame waits.
        assert!(nic.deliver(&mut vm).is_none());
        assert_eq!(nic.rx_pending(), 1);
        nic.pop_mailbox();
        let frame2 = nic.deliver(&mut vm).unwrap();
        assert_eq!(frame2.len(), 64);
        // DMA landed in the mailbox buffer.
        let mut got = [0u8; 40];
        vm.mem().read_bytes(NIC_RX_BUF, &mut got).unwrap();
        assert_eq!(got, [2u8; 40]);
    }

    #[test]
    fn nic_tx_capture() {
        let mut vm = vm();
        vm.mem_mut().write_bytes(0x5000, b"response").unwrap();
        let mut nic = NicDevice::new();
        nic.handle_out(rnr_machine::PORT_NIC_TX_ADDR, 0x5000, &vm);
        nic.handle_out(rnr_machine::PORT_NIC_TX_LEN, 8, &vm);
        nic.handle_out(rnr_machine::PORT_NIC_TX_CMD, 1, &vm);
        assert_eq!(nic.tx_frames(), &[b"response".to_vec()]);
    }
}
