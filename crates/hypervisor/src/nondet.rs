//! Models of host non-determinism (seeded, so experiments are repeatable).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A crafted packet delivered at a specific virtual time (used to mount the
/// §6 network-borne ROP attack).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PacketInjection {
    /// Virtual cycle at which the packet arrives.
    pub at_cycle: u64,
    /// Raw payload (padded to the NIC's 32-byte granule on delivery).
    pub payload: Vec<u8>,
}

/// The workload's network-traffic profile.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct NetProfile {
    /// Mean cycles between packet arrivals (`None` = no traffic).
    pub mean_interarrival: Option<u64>,
    /// Benign frame size range in bytes.
    pub size_range: (usize, usize),
    /// Every `n`-th packet is an MTU-sized burst frame (drives the deep
    /// recursive driver copies behind apache's Figure 8 underflows).
    pub large_every: Option<u64>,
    /// Crafted packets (attack payloads) delivered at fixed cycles.
    pub injections: Vec<PacketInjection>,
}

impl NetProfile {
    /// No network traffic at all.
    pub fn quiet() -> NetProfile {
        NetProfile::default()
    }

    /// True if any benign traffic is generated.
    pub fn has_traffic(&self) -> bool {
        self.mean_interarrival.is_some()
    }
}

/// Seeded source for every non-deterministic input the recorder logs.
///
/// Replay never touches this: the whole point of the input log is that the
/// replayers reproduce these values without re-sampling them.
#[derive(Debug)]
pub struct NondetSource {
    rng: StdRng,
    packet_counter: u64,
}

impl NondetSource {
    /// A source with the given seed.
    pub fn new(seed: u64) -> NondetSource {
        NondetSource { rng: StdRng::seed_from_u64(seed), packet_counter: 0 }
    }

    /// Host-induced jitter added to the time-stamp counter value.
    pub fn tsc_jitter(&mut self) -> u64 {
        self.rng.gen_range(0..64)
    }

    /// Jitter applied to the timer period.
    pub fn timer_jitter(&mut self, period: u64) -> u64 {
        let j = (period / 20).max(1);
        self.rng.gen_range(0..j)
    }

    /// Virtual-disk latency for `sectors` sectors.
    pub fn disk_latency(&mut self, sectors: u64, base: u64, per_sector: u64) -> u64 {
        let nominal = base + per_sector * sectors;
        nominal + self.rng.gen_range(0..nominal / 4 + 1)
    }

    /// A value for the hardware random-number port.
    pub fn rng_port(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Interarrival gap until the next packet (exponential-ish around the
    /// mean).
    pub fn packet_gap(&mut self, mean: u64) -> u64 {
        self.rng.gen_range(mean / 2..=mean + mean / 2).max(1)
    }

    /// A benign packet for `profile`: pseudo-text content with a
    /// terminating zero word within the first 120 bytes, so the guest's
    /// word-`strcpy` message path stays in bounds on benign traffic.
    pub fn benign_packet(&mut self, profile: &NetProfile) -> Vec<u8> {
        self.packet_counter += 1;
        let large = profile.large_every.is_some_and(|n| n > 0 && self.packet_counter.is_multiple_of(n));
        let (lo, hi) = profile.size_range;
        let len = if large {
            rnr_guest::layout::NIC_MTU
        } else {
            self.rng.gen_range(lo.max(40)..=hi.max(lo.max(40)))
        };
        let mut p = vec![0u8; len];
        for b in p.iter_mut() {
            *b = self.rng.gen_range(0x20..0x7f); // printable, never 0
        }
        // Zero word at offset 56: the in-kernel copy stops well inside the
        // 128-byte message buffer.
        for b in &mut p[56..64] {
            *b = 0;
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> NetProfile {
        NetProfile {
            mean_interarrival: Some(10_000),
            size_range: (64, 256),
            large_every: Some(4),
            injections: vec![],
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = NondetSource::new(7);
        let mut b = NondetSource::new(7);
        for _ in 0..100 {
            assert_eq!(a.tsc_jitter(), b.tsc_jitter());
            assert_eq!(a.rng_port(), b.rng_port());
            assert_eq!(a.packet_gap(1000), b.packet_gap(1000));
        }
    }

    #[test]
    fn benign_packets_have_early_zero_word() {
        let mut s = NondetSource::new(1);
        let p = s.benign_packet(&profile());
        assert!(p.len() >= 64);
        assert!(p[56..64].iter().all(|&b| b == 0));
        assert!(p[..56].iter().all(|&b| b != 0));
    }

    #[test]
    fn large_every_produces_mtu_frames() {
        let mut s = NondetSource::new(1);
        let prof = profile();
        let sizes: Vec<usize> = (0..8).map(|_| s.benign_packet(&prof).len()).collect();
        assert_eq!(sizes[3], rnr_guest::layout::NIC_MTU);
        assert_eq!(sizes[7], rnr_guest::layout::NIC_MTU);
        assert!(sizes[0] < 1024);
    }

    #[test]
    fn disk_latency_scales_with_sectors() {
        let mut s = NondetSource::new(1);
        let small = s.disk_latency(1, 1000, 100);
        let big = s.disk_latency(100, 1000, 100);
        assert!(big > small);
        assert!(small >= 1100);
    }
}
