//! The guest-VM specification produced by workload builders.

use rnr_guest::{BootTable, KernelImage};
use rnr_isa::Image;

use crate::NetProfile;

/// Everything needed to instantiate and drive one guest VM: kernel,
/// workload images, initial threads, and the device-activity profile.
///
/// Workload builders (`rnr-workloads`) produce a `VmSpec`; the recorder and
/// the replayers consume it. Record and replay must be built from the *same*
/// spec — the replayers re-create the initial VM state from it, and the
/// input log supplies everything else.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct VmSpec {
    /// The guest kernel.
    pub kernel: KernelImage,
    /// Additional images (user programs, data) loaded at boot.
    pub extra_images: Vec<Image>,
    /// Initial threads and workload parameters.
    pub boot: BootTable,
    /// Timer interrupt period in virtual cycles.
    pub timer_period: u64,
    /// Network traffic profile.
    pub net: NetProfile,
    /// Seed for the deterministic initial disk image.
    pub disk_seed: u64,
    /// Virtual disk size in bytes.
    pub disk_bytes: usize,
    /// Human-readable workload name (reports and tables).
    pub name: String,
}

impl VmSpec {
    /// A minimal spec: the given kernel, no extra images, quiet network,
    /// 200k-cycle timer.
    pub fn new(kernel: KernelImage, name: impl Into<String>) -> VmSpec {
        VmSpec {
            kernel,
            extra_images: Vec::new(),
            boot: BootTable::new(),
            timer_period: 200_000,
            net: NetProfile::quiet(),
            disk_seed: 0xD15C,
            disk_bytes: 4 << 20,
            name: name.into(),
        }
    }

    /// All images to load, kernel first.
    pub fn images(&self) -> Vec<&Image> {
        let mut v = vec![self.kernel.image()];
        v.extend(self.extra_images.iter());
        v
    }
}

/// Derives the hardware JOP table from the guest images: every symbol
/// starts a function extending to the next symbol; only the first `limit`
/// functions are tracked (the "most common functions" of Table 1).
pub fn jop_table_from_spec(spec: &VmSpec, limit: usize) -> rnr_machine::JopTable {
    let mut ranges = Vec::new();
    for image in std::iter::once(spec.kernel.image()).chain(spec.extra_images.iter()) {
        let mut addrs: Vec<rnr_isa::Addr> = image.symbols().map(|(_, a)| a).collect();
        addrs.sort_unstable();
        addrs.dedup();
        for (i, &start) in addrs.iter().enumerate() {
            let end = addrs.get(i + 1).copied().unwrap_or(image.end());
            ranges.push((start, end));
        }
    }
    // Sort globally before truncating: the "most common" cutoff must use
    // the same ordering callers observe in the final table, regardless of
    // the images' load-address order.
    ranges.sort_unstable();
    ranges.dedup();
    ranges.truncate(limit);
    rnr_machine::JopTable::from_ranges(ranges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnr_guest::KernelBuilder;

    #[test]
    fn images_are_kernel_first() {
        let spec = VmSpec::new(KernelBuilder::new().build(), "test");
        assert_eq!(spec.images().len(), 1);
        assert_eq!(spec.images()[0].base(), rnr_guest::layout::KERNEL_BASE);
        assert_eq!(spec.name, "test");
    }
}
