//! Guest-kernel introspection (§5.2.1).

use rnr_guest::{layout, KernelImage};
use rnr_isa::{Addr, Reg};
use rnr_machine::GuestVm;
use rnr_ras::ThreadId;

/// Reads guest kernel state without guest cooperation.
///
/// The hypervisor "can introspect the state of the guest kernel to identify
/// the next thread to be scheduled. In Linux, a thread's descriptor
/// (`task_struct`) can be easily found if the thread's stack pointer is
/// known" (§5.2.1). Our guest mirrors this: per-thread kernel stacks live in
/// fixed slots, so a stack pointer names its `task_struct` slot, and the
/// thread ID is read from guest memory.
#[derive(Debug, Clone)]
pub struct Introspector {
    task_structs: Addr,
    current: Addr,
    priv_flag: Addr,
    oops_count: Addr,
    switch_sp_trap: Addr,
    thread_create_trap: Addr,
    thread_exit_trap: Addr,
}

impl Introspector {
    /// Builds an introspector from the kernel's symbol contract, obtained
    /// "by analyzing the binary image of the guest kernel" (§4.4).
    pub fn new(kernel: &KernelImage) -> Introspector {
        Introspector {
            task_structs: kernel.task_structs(),
            current: kernel.current_ptr(),
            priv_flag: kernel.priv_flag(),
            oops_count: kernel.oops_count(),
            switch_sp_trap: kernel.switch_sp_trap(),
            thread_create_trap: kernel.thread_create_trap(),
            thread_exit_trap: kernel.thread_exit_trap(),
        }
    }

    /// PC of the context-switch (stack-switch) trap.
    pub fn switch_sp_trap(&self) -> Addr {
        self.switch_sp_trap
    }

    /// PC of the thread-creation trap.
    pub fn thread_create_trap(&self) -> Addr {
        self.thread_create_trap
    }

    /// PC of the thread-exit trap.
    pub fn thread_exit_trap(&self) -> Addr {
        self.thread_exit_trap
    }

    /// At the stack-switch trap, the next thread's stack pointer sits in
    /// `r15` ("we can find the next thread's stack pointer by examining the
    /// register content of the VM — available in the VMCS after a VMExit").
    pub fn next_thread_at_switch(&self, vm: &GuestVm) -> Option<ThreadId> {
        let sp = vm.cpu().reg(Reg::R15);
        self.thread_from_sp(vm, sp)
    }

    /// Maps a stack pointer to the owning thread via its `task_struct`.
    pub fn thread_from_sp(&self, vm: &GuestVm, sp: Addr) -> Option<ThreadId> {
        if sp < layout::STACKS_BASE {
            return None;
        }
        let slot = ((sp - 1 - layout::STACKS_BASE) / layout::STACK_SIZE) as usize;
        if slot >= layout::MAX_THREADS {
            return None;
        }
        let tcb = self.task_structs + slot as u64 * layout::TCB_STRIDE;
        let tid = vm.mem().read_u64(tcb + layout::tcb::TID as u64).ok()?;
        Some(ThreadId(tid))
    }

    /// At the create/exit traps, the affected thread's ID is in `r1`.
    pub fn thread_at_commit(&self, vm: &GuestVm) -> ThreadId {
        ThreadId(vm.cpu().reg(Reg::R1))
    }

    /// The currently scheduled thread, via the kernel's `current` pointer.
    pub fn current_thread(&self, vm: &GuestVm) -> Option<ThreadId> {
        let tcb = vm.mem().read_u64(self.current).ok()?;
        if tcb == 0 {
            return None;
        }
        let tid = vm.mem().read_u64(tcb + layout::tcb::TID as u64).ok()?;
        Some(ThreadId(tid))
    }

    /// The guest's privilege flag — non-zero after a successful `grant_root`
    /// (used by attack forensics, §6).
    pub fn priv_flag(&self, vm: &GuestVm) -> u64 {
        vm.mem().read_u64(self.priv_flag).unwrap_or(0)
    }

    /// Kernel oops counter (bug-recovery events).
    pub fn oops_count(&self, vm: &GuestVm) -> u64 {
        vm.mem().read_u64(self.oops_count).unwrap_or(0)
    }

    /// The state of every `task_struct` slot: `(tid, state)` pairs, for
    /// post-attack analysis ("who attacked the machine?", §6).
    pub fn thread_table(&self, vm: &GuestVm) -> Vec<(ThreadId, u64)> {
        (0..layout::MAX_THREADS)
            .filter_map(|slot| {
                let tcb = self.task_structs + slot as u64 * layout::TCB_STRIDE;
                let state = vm.mem().read_u64(tcb + layout::tcb::STATE as u64).ok()?;
                let tid = vm.mem().read_u64(tcb + layout::tcb::TID as u64).ok()?;
                (state != 0).then_some((ThreadId(tid), state))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnr_guest::KernelBuilder;
    use rnr_machine::MachineConfig;

    fn setup() -> (Introspector, GuestVm) {
        let kernel = KernelBuilder::new().build();
        let vm = GuestVm::new(MachineConfig::default(), &[kernel.image()]);
        (Introspector::new(&kernel), vm)
    }

    #[test]
    fn sp_maps_to_slot_and_tid() {
        let (intro, mut vm) = setup();
        // Fake task_structs[2].tid = 42.
        let tcb = intro.task_structs + 2 * layout::TCB_STRIDE;
        vm.mem_mut().write_u64(tcb + layout::tcb::TID as u64, 42).unwrap();
        // Any sp within slot 2's stack maps there, including the stack top.
        let sp_mid = layout::STACKS_BASE + 2 * layout::STACK_SIZE + 100;
        assert_eq!(intro.thread_from_sp(&vm, sp_mid), Some(ThreadId(42)));
        let sp_top = layout::stack_top(2);
        assert_eq!(intro.thread_from_sp(&vm, sp_top), Some(ThreadId(42)));
    }

    #[test]
    fn out_of_range_sp_is_none() {
        let (intro, vm) = setup();
        assert_eq!(intro.thread_from_sp(&vm, 0x100), None);
        assert_eq!(
            intro.thread_from_sp(&vm, layout::stack_top(layout::MAX_THREADS - 1) + layout::STACK_SIZE),
            None
        );
    }

    #[test]
    fn current_thread_follows_pointer() {
        let (intro, mut vm) = setup();
        let tcb = intro.task_structs + 3 * layout::TCB_STRIDE;
        vm.mem_mut().write_u64(tcb + layout::tcb::TID as u64, 4).unwrap();
        vm.mem_mut().write_u64(intro.current, tcb).unwrap();
        assert_eq!(intro.current_thread(&vm), Some(ThreadId(4)));
    }

    #[test]
    fn priv_flag_reads_guest_memory() {
        let (intro, mut vm) = setup();
        assert_eq!(intro.priv_flag(&vm), 0);
        vm.mem_mut().write_u64(intro.priv_flag, 0x1337).unwrap();
        assert_eq!(intro.priv_flag(&vm), 0x1337);
    }

    #[test]
    fn thread_table_lists_live_slots() {
        let (intro, mut vm) = setup();
        let tcb = intro.task_structs;
        vm.mem_mut().write_u64(tcb, 1).unwrap(); // state
        vm.mem_mut().write_u64(tcb + 8, 1).unwrap(); // tid
        assert_eq!(intro.thread_table(&vm), vec![(ThreadId(1), 1)]);
    }
}
