//! The monitored-recording event loop (§3.1, §7).

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use rnr_guest::layout;
use rnr_isa::Reg;
use rnr_log::{
    AlarmInfo, Category, DurableLogConfig, DurableWriter, FaultPlan, InputLog, LogSink, Record, VrtAlarmInfo,
};
use rnr_machine::{
    CallRetTrap, CostModel, CpuState, Digest, Exit, ExitControls, FaultKind, FinishIo, Fnv1a, GuestVm,
    MachineConfig, SharedPageCache, IRQ_DISK, IRQ_NIC, IRQ_TIMER, MMIO_NIC_RX_LEN, MMIO_NIC_RX_PENDING,
    MMIO_NIC_RX_POP, PAGE_SIZE, PORT_CONSOLE, PORT_DISK_ADDR, PORT_DISK_CMD, PORT_DISK_COUNT,
    PORT_DISK_SECTOR, PORT_NIC_TX_ADDR, PORT_NIC_TX_CMD, PORT_NIC_TX_LEN, PORT_RNG, PORT_VRT_BASE,
    PORT_VRT_CMD, PORT_VRT_LEN, VRT_CMD_DECLARE, VRT_CMD_RETIRE,
};
use rnr_ras::{
    AttributionReport, BackRasEntry, BackRasTable, RasAttribution, RasConfig, RasCounters, ThreadId,
};
use rnr_vrt::VrtParams;

use crate::{CycleAttribution, DiskDevice, Introspector, NicDevice, NondetSource, PacketInjection, VmSpec};

/// The four recording setups of Figure 5(a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RecordMode {
    /// No recording, paravirtual drivers (`NoRecPV`).
    NoRecPv,
    /// No recording, emulated (hypervisor-mediated) I/O (`NoRec`).
    NoRec,
    /// Recording without RAS save/restore at context switches (`RecNoRAS`).
    RecNoRas,
    /// Full monitored recording (`Rec`).
    Rec,
}

impl RecordMode {
    /// True if the input log is produced.
    pub fn is_recording(self) -> bool {
        matches!(self, RecordMode::RecNoRas | RecordMode::Rec)
    }

    /// True if the BackRAS extension (context-switch save/restore + the
    /// whitelists + alarms) is active.
    pub fn has_ras_extension(self) -> bool {
        self == RecordMode::Rec
    }

    /// True if the guest must be a paravirtual kernel.
    pub fn is_pv(self) -> bool {
        self == RecordMode::NoRecPv
    }

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            RecordMode::NoRecPv => "NoRecPV",
            RecordMode::NoRec => "NoRec",
            RecordMode::RecNoRas => "RecNoRAS",
            RecordMode::Rec => "Rec",
        }
    }
}

/// Recorder configuration.
#[derive(Debug, Clone)]
pub struct RecordConfig {
    /// Recording setup.
    pub mode: RecordMode,
    /// Seed for all host non-determinism.
    pub seed: u64,
    /// Stop after this many retired guest instructions.
    pub until_retired: u64,
    /// Trap every call/return and run the lockstep counterfactual RAS
    /// analysis of Figure 8 (the paper's QEMU-emulation functional
    /// environment, §7.2). Only meaningful with [`RecordMode::Rec`].
    pub functional_ras_analysis: bool,
    /// Use the predecoded instruction cache (wall-clock optimization; never
    /// changes virtual cycles or digests).
    pub decode_cache: bool,
    /// Execute whole cached basic blocks between event horizons (wall-clock
    /// optimization; never changes virtual cycles, the log, or digests).
    pub block_engine: bool,
    /// Chain hot blocks into superblock traces (wall-clock optimization;
    /// never changes virtual cycles, the log, or digests). Requires
    /// `block_engine`.
    pub superblocks: bool,
    /// RAS capacity (the paper simulates 48).
    pub ras_capacity: usize,
    /// Cycle cost model.
    pub costs: CostModel,
    /// Keep a debug ring buffer of the last `n` executed PCs.
    pub trace: usize,
    /// Program the hardware JOP table (Table 1, row 2) with the `n` most
    /// common functions of the guest images (`None` disables JOP alarms).
    /// `Some(usize::MAX)` tracks every function.
    pub jop_common_functions: Option<usize>,
    /// Stall the recorded VM at the first alarm instead of continuing
    /// ("depending on the risk tolerance of the workload, the recorded VM
    /// may be stopped until the alarm is analyzed, or allowed to continue",
    /// §3). With the §6 attack this halts the guest *before* any gadget
    /// executes.
    pub stall_on_alarm: bool,
    /// Capture a [`SpanSeed`] roughly every this many retired instructions,
    /// cutting the log into spans a parallel checkpointing replayer can
    /// verify concurrently. Capture is pure reads plus `Arc` clones of the
    /// copy-on-write pages, so the log, cycles, and digests are byte-for-byte
    /// identical with seeding on or off. `None` disables capture.
    pub span_seed_every_insns: Option<u64>,
    /// Persist the log to a durable segment store as it is recorded
    /// (DESIGN.md §13). Resilience/wall-clock only; the log, cycles, and
    /// digests are byte-for-byte identical with persistence on or off.
    pub durable_log: Option<DurableLogConfig>,
    /// Arm the Variable Record Table memory-safety detector (DESIGN.md §15)
    /// with these parameters. `None` leaves the recorded VM unarmed; replay
    /// VMs are *always* unarmed, so VRT alarms reach the replayer only
    /// through the log.
    pub vrt: Option<VrtParams>,
}

impl RecordConfig {
    /// Full recording with default costs.
    pub fn new(mode: RecordMode, seed: u64, until_retired: u64) -> RecordConfig {
        RecordConfig {
            mode,
            seed,
            until_retired,
            functional_ras_analysis: false,
            decode_cache: true,
            block_engine: true,
            superblocks: true,
            ras_capacity: RasConfig::DEFAULT_CAPACITY,
            costs: CostModel::default(),
            trace: 0,
            jop_common_functions: None,
            stall_on_alarm: false,
            span_seed_every_insns: None,
            durable_log: None,
            vrt: None,
        }
    }
}

/// A recorder-side snapshot from which a parallel-replay span worker can
/// start verifying mid-log (DESIGN.md §11).
///
/// A seed is everything [`crate::Recorder`] knows about the guest at a
/// quiescent point of the recording loop: architectural CPU state, the
/// copy-on-write page `Arc`s (shared, not copied), the disk, and the
/// hypervisor-side BackRAS bookkeeping. A replayer restored from seed *i*
/// and driven to seed *i+1*'s position reaches, by determinism, exactly the
/// state seed *i+1* captured — which is what lets seams between spans be
/// checked with digests alone.
#[derive(Debug, Clone)]
pub struct SpanSeed {
    /// Retired instruction count at capture — the span boundary.
    pub at_insn: u64,
    /// Number of log records emitted before capture: the first record the
    /// restored worker will consume.
    pub at_record: usize,
    /// Architectural CPU state (registers, PC, mode, live RAS).
    pub cpu: CpuState,
    /// The guest's pages, shared by reference; replay-side writes
    /// copy-on-write, never touching the recorder's view.
    pub mem_pages: Vec<Arc<[u8; PAGE_SIZE]>>,
    /// Disk device state, including in-flight operation bookkeeping.
    pub disk: DiskDevice,
    /// Saved per-thread BackRAS entries, with the running thread's RAS
    /// folded in the same way a replay checkpoint saves it.
    pub backras: BackRasTable,
    /// Thread the guest kernel was running at capture.
    pub current_tid: ThreadId,
    /// Thread whose exit was announced but not yet switched away from.
    pub dying: Option<ThreadId>,
}

/// Errors before or during recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The spec's kernel flavour does not match the mode (PV vs emulated).
    KernelModeMismatch {
        /// Whether the mode wants a PV kernel.
        want_pv: bool,
    },
    /// The durable log store could not be created (I/O error message).
    DurableLog(String),
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::KernelModeMismatch { want_pv } => {
                write!(
                    f,
                    "recording mode requires a {} kernel",
                    if *want_pv { "paravirtual" } else { "standard" }
                )
            }
            RecordError::DurableLog(msg) => write!(f, "durable log store: {msg}"),
        }
    }
}

impl std::error::Error for RecordError {}

/// Results of a recorded (or baseline) run.
#[derive(Debug, Clone)]
pub struct RecordOutcome {
    /// The input log (empty for non-recording modes), shared so replayers
    /// can attach without copying it.
    pub log: Arc<InputLog>,
    /// Total virtual cycles — the execution-time measure of every figure.
    pub cycles: u64,
    /// Retired guest instructions (the work measure held constant across
    /// modes).
    pub retired: u64,
    /// Digest of the final architectural state (VM + disk), for replay
    /// verification.
    pub final_digest: Digest,
    /// Overhead cycles attributed per event class (Figure 5(b)).
    pub attribution: CycleAttribution,
    /// RAS hardware counters (Figure 6(b) bandwidth, Figure 8 inputs).
    pub ras_counters: RasCounters,
    /// Number of ROP alarms inserted into the log.
    pub alarms: usize,
    /// Console output captured from the guest.
    pub console: Vec<u8>,
    /// Frames the guest transmitted.
    pub tx_frames: usize,
    /// The counterfactual false-alarm attribution (Figure 8), when
    /// `functional_ras_analysis` was on.
    pub fig8: Option<AttributionReport>,
    /// Guest fault that ended the run early, if any.
    pub fault: Option<FaultKind>,
    /// PC of the faulting instruction, when a fault occurred.
    pub fault_pc: Option<rnr_isa::Addr>,
    /// Register file at the fault, for diagnostics.
    pub fault_regs: Option<[u64; 16]>,
    /// Recently executed PCs before a fault (only when tracing was enabled
    /// via [`RecordConfig::trace`]).
    pub fault_trace: Vec<rnr_isa::Addr>,
    /// IVT contents at the fault, for diagnostics.
    pub fault_ivt: Option<[u64; 3]>,
    /// Every disk operation started (only when tracing is enabled).
    pub disk_ops: Vec<crate::devices::DiskOp>,
    /// Final value of the guest's privilege flag (non-zero = the §6 attack
    /// escalated before detection/response).
    pub priv_flag: u64,
    /// Completed guest operations (sum of the per-thread counters at
    /// `layout::OPS_BASE`) — the fixed-work measure for mode comparisons.
    pub ops: u64,
    /// True when the run was stopped by the stall-on-alarm policy.
    pub stalled: bool,
    /// Guest kernel context switches observed at the interposition trap.
    pub context_switches: u64,
    /// Cycle timestamps of context switches (only when tracing is enabled;
    /// feeds the Table 1 DOS watchdog).
    pub switch_trace: Vec<u64>,
    /// Store-watchpoint hits `(pc, addr, value, retired)` (debugging).
    pub watch_hits: Vec<(u64, u64, u64, u64)>,
    /// Basic-block cache counters (wall-clock diagnostics, never part of
    /// the verified report).
    pub block_stats: rnr_machine::BlockStats,
    /// Span seeds captured during recording (empty unless
    /// [`RecordConfig::span_seed_every_insns`] was set).
    pub span_seeds: Vec<SpanSeed>,
}

impl RecordOutcome {
    /// Log bytes per million cycles — scaled to MB/s in the Figure 6(a)
    /// harness via the virtual clock frequency.
    pub fn log_bytes(&self) -> u64 {
        self.log.total_bytes()
    }
}

/// The recording hypervisor: drives one guest VM to an instruction budget,
/// emulating devices, injecting interrupts, and (in recording modes)
/// producing the input log.
#[derive(Debug)]
pub struct Recorder {
    vm: GuestVm,
    config: RecordConfig,
    nondet: NondetSource,
    disk: DiskDevice,
    nic: NicDevice,
    console: Vec<u8>,
    log: InputLog,
    sink: Option<LogSink>,
    durable: Option<DurableWriter>,
    attribution: CycleAttribution,
    intro: Introspector,
    current_tid: ThreadId,
    dying: Option<ThreadId>,
    backras: BackRasTable,
    pending_irqs: VecDeque<u8>,
    next_timer: u64,
    timer_period: u64,
    next_packet: Option<u64>,
    net: crate::NetProfile,
    injections: VecDeque<PacketInjection>,
    watch_addr: Option<u64>,
    watch_last: u64,
    fig8: Option<RasAttribution>,
    vrt_base: u64,
    vrt_len: u64,
    alarms: usize,
    fault: Option<FaultKind>,
    stalled: bool,
    context_switches: u64,
    disk_ops: Vec<crate::devices::DiskOp>,
    switch_trace: Vec<u64>,
    span_seeds: Vec<SpanSeed>,
    seed_tx: Option<std::sync::mpsc::Sender<SpanSeed>>,
    next_seed_at: u64,
}

impl Recorder {
    /// Prepares a recorder for `spec` under `config`.
    ///
    /// # Errors
    ///
    /// Fails if the spec's kernel flavour (PV vs emulated I/O) does not
    /// match the mode.
    pub fn new(spec: &VmSpec, config: RecordConfig) -> Result<Recorder, RecordError> {
        if spec.kernel.is_paravirtual() != config.mode.is_pv() {
            return Err(RecordError::KernelModeMismatch { want_pv: config.mode.is_pv() });
        }
        let mode = config.mode;
        let ras = if mode.has_ras_extension() {
            RasConfig::extended(config.ras_capacity)
        } else {
            // Baselines and the RecNoRAS ablation: no BackRAS, no alarms.
            let mut r = RasConfig::replay(config.ras_capacity);
            r.backras_enabled = false;
            r
        };
        let exits = ExitControls {
            rdtsc_exiting: mode.is_recording(),
            evict_exiting: mode.has_ras_extension(),
            callret_trap: if config.functional_ras_analysis { CallRetTrap::All } else { CallRetTrap::None },
        };
        let jop_table = config.jop_common_functions.map(|limit| crate::jop_table_from_spec(spec, limit));
        let machine = MachineConfig {
            syscall_entry: spec.kernel.syscall_entry(),
            ras,
            exits,
            jop_table,
            vrt: config.vrt.clone(),
            costs: config.costs,
            decode_cache: config.decode_cache,
            block_engine: config.block_engine,
            superblocks: config.superblocks,
            ..MachineConfig::default()
        };
        let mut images = vec![spec.kernel.image().clone()];
        images.extend(spec.extra_images.iter().cloned());
        images.push(spec.boot.to_image());
        let image_refs: Vec<&rnr_isa::Image> = images.iter().collect();
        let mut vm = GuestVm::new(machine, &image_refs);
        if config.trace > 0 {
            vm.enable_trace(config.trace);
        }
        // Read the debugging watch address once here, not in the run loop:
        // env lookups are host syscalls and have no place on the hot path.
        let watch_addr = std::env::var("RNR_WATCH_ADDR").ok().and_then(|v| u64::from_str_radix(&v, 16).ok());
        if let Some(w) = watch_addr {
            vm.set_watchpoint(w);
        }
        vm.set_entry(spec.kernel.entry());
        vm.cpu_mut().ras.set_whitelists(spec.kernel.whitelists());
        if config.functional_ras_analysis {
            // The functional environment wants every return visible as a
            // RetTrap; alarms come from the lockstep analyzer instead.
        }
        let intro = Introspector::new(&spec.kernel);
        if mode.has_ras_extension() {
            vm.add_breakpoint(intro.switch_sp_trap());
            vm.add_breakpoint(intro.thread_create_trap());
            vm.add_breakpoint(intro.thread_exit_trap());
        }
        let fig8 = config
            .functional_ras_analysis
            .then(|| RasAttribution::new(config.ras_capacity, spec.kernel.whitelists(), ThreadId(1)));
        let mut nondet = NondetSource::new(config.seed);
        let next_timer = spec.timer_period + nondet.timer_jitter(spec.timer_period);
        let next_packet = spec.net.mean_interarrival.map(|m| nondet.packet_gap(m));
        let durable = match config.durable_log.as_ref() {
            Some(d) => Some(
                DurableWriter::create(d.clone(), &FaultPlan::default())
                    .map_err(|e| RecordError::DurableLog(e.to_string()))?,
            ),
            None => None,
        };
        Ok(Recorder {
            watch_addr,
            watch_last: 0,
            vm,
            nondet,
            disk: DiskDevice::new(spec.disk_bytes, spec.disk_seed),
            nic: NicDevice::new(),
            console: Vec::new(),
            log: InputLog::new(),
            sink: None,
            durable,
            attribution: CycleAttribution::new(),
            intro,
            current_tid: ThreadId(1),
            dying: None,
            backras: BackRasTable::new(),
            pending_irqs: VecDeque::new(),
            next_timer,
            timer_period: spec.timer_period,
            next_packet,
            net: spec.net.clone(),
            injections: spec.net.injections.iter().cloned().collect(),
            fig8,
            vrt_base: 0,
            vrt_len: 0,
            alarms: 0,
            fault: None,
            stalled: false,
            context_switches: 0,
            disk_ops: Vec::new(),
            switch_trace: Vec::new(),
            span_seeds: Vec::new(),
            seed_tx: None,
            next_seed_at: config.span_seed_every_insns.unwrap_or(u64::MAX),
            config,
        })
    }

    /// Attaches a live sink: every record is published to it as soon as it is
    /// appended to the recorder's own log, so a concurrent checkpointing
    /// replayer can consume the stream while recording is still in progress.
    pub fn stream_to(&mut self, sink: LogSink) {
        self.sink = Some(sink);
    }

    /// Attaches a durable segment-store writer: every record is persisted as
    /// it is appended, and the store is sealed when recording finishes.
    /// Replaces any writer created from [`RecordConfig::durable_log`] — the
    /// pipeline uses this to pass a fault-plan-aware writer.
    pub fn persist_to(&mut self, writer: DurableWriter) {
        self.durable = Some(writer);
    }

    /// Mirrors every captured [`SpanSeed`] to `tx` as soon as it exists, so
    /// a concurrent parallel replayer can dispatch span workers while
    /// recording is still in progress. Seeds still accumulate in
    /// [`RecordOutcome::span_seeds`] regardless.
    pub fn seed_to(&mut self, tx: std::sync::mpsc::Sender<SpanSeed>) {
        self.seed_tx = Some(tx);
    }

    /// Attaches the run-wide shared decoded-block cache: pages this recorder
    /// decodes become visible to the replayers of the same run and vice
    /// versa. Wall-clock only; never affects the log, cycles, or digests.
    pub fn attach_shared_cache(&mut self, shared: Arc<SharedPageCache>) {
        self.vm.attach_shared_cache(shared);
    }

    /// Appends a record to the log, mirroring it to the live sink if one is
    /// attached.
    fn emit(&mut self, rec: Record) {
        if let Some(sink) = self.sink.as_mut() {
            sink.push(rec.clone());
        }
        if let Some(writer) = self.durable.as_mut() {
            writer.push(&rec);
        }
        self.log.push(rec);
    }

    /// Runs to the instruction budget and returns the outcome.
    pub fn run(mut self) -> RecordOutcome {
        let until = self.config.until_retired;
        loop {
            self.service_due_events();
            self.try_inject_pending();
            // Span seeds are captured only at quiescent loop tops: no
            // pending interrupt, no fault, budget not yet exhausted. At such
            // a point every emitted record is fully serviced, so (at_record,
            // at_insn) is a consistent cut of the execution.
            if self.config.mode.is_recording()
                && self.vm.retired() >= self.next_seed_at
                && self.vm.retired() < until
                && self.pending_irqs.is_empty()
                && self.fault.is_none()
                && !self.stalled
            {
                self.capture_span_seed();
                self.next_seed_at =
                    self.vm.retired().saturating_add(self.config.span_seed_every_insns.unwrap_or(u64::MAX));
            }
            if self.vm.retired() >= until || self.fault.is_some() || self.stalled {
                break;
            }
            let deadline = self.next_event_cycle();
            let exit = self
                .vm
                .run(rnr_machine::RunBudget { until_retired: Some(until), until_cycles: Some(deadline) });
            if let Some(watch) = self.watch_addr {
                let val = self.vm.mem().read_u64(watch).unwrap_or(0);
                if val != self.watch_last {
                    eprintln!(
                        "WATCH {:#x}: {} -> {} at insn {} pc {:#x} exit {:?}",
                        watch,
                        self.watch_last,
                        val,
                        self.vm.retired(),
                        self.vm.cpu().pc,
                        exit
                    );
                    self.watch_last = val;
                }
            }
            self.handle_exit(exit);
        }
        if self.config.mode.is_recording() {
            self.emit(Record::End { at_insn: self.vm.retired(), at_cycle: self.vm.cycles() });
        }
        if let Some(sink) = self.sink.take() {
            sink.finish();
        }
        if let Some(writer) = self.durable.take() {
            writer.finish();
        }
        if let Some(f) = self.fig8.as_mut() {
            f.add_instructions(self.vm.retired());
        }
        let final_digest = combined_digest(&self.vm, &self.disk);
        RecordOutcome {
            cycles: self.vm.cycles(),
            retired: self.vm.retired(),
            final_digest,
            ras_counters: *self.vm.cpu().ras.counters(),
            alarms: self.alarms,
            tx_frames: self.nic.tx_frames().len(),
            fig8: self.fig8.as_ref().map(RasAttribution::report),
            fault: self.fault,
            stalled: self.stalled,
            fault_pc: self.fault.map(|_| self.vm.cpu().pc),
            fault_trace: if self.fault.is_some() { self.vm.trace().collect() } else { Vec::new() },
            disk_ops: self.disk_ops,
            fault_ivt: self.fault.map(|_| {
                let ivt = self.vm.config().ivt_base;
                [
                    self.vm.mem().read_u64(ivt).unwrap_or(0),
                    self.vm.mem().read_u64(ivt + 8).unwrap_or(0),
                    self.vm.mem().read_u64(ivt + 16).unwrap_or(0),
                ]
            }),
            fault_regs: self.fault.map(|_| {
                let mut regs = [0u64; 16];
                for r in rnr_isa::Reg::ALL {
                    regs[r.index()] = self.vm.cpu().reg(r);
                }
                regs
            }),
            priv_flag: self.intro.priv_flag(&self.vm),
            ops: (0..rnr_guest::layout::MAX_THREADS as u64)
                .map(|slot| self.vm.mem().read_u64(rnr_guest::layout::OPS_BASE + (slot + 1) * 8).unwrap_or(0))
                .sum(),
            context_switches: self.context_switches,
            watch_hits: self.vm.watch_hits().to_vec(),
            block_stats: self.vm.block_stats(),
            switch_trace: self.switch_trace,
            console: self.console,
            span_seeds: self.span_seeds,
            log: Arc::new(self.log),
            attribution: self.attribution,
        }
    }

    /// Snapshots the recording into a [`SpanSeed`]. Pure reads and `Arc`
    /// clones only — in particular the live RAS is folded into the BackRAS
    /// copy without `save_backras`, whose hardware counters feed the
    /// recording report and must not move.
    fn capture_span_seed(&mut self) {
        let mut backras = self.backras.clone();
        backras.save(self.current_tid, BackRasEntry::from_entries(self.vm.cpu().ras.snapshot()));
        let seed = SpanSeed {
            at_insn: self.vm.retired(),
            at_record: self.log.len(),
            cpu: self.vm.cpu().save_state(),
            mem_pages: self.vm.mem().snapshot_pages(),
            disk: self.disk.clone(),
            backras,
            current_tid: self.current_tid,
            dying: self.dying,
        };
        if let Some(tx) = &self.seed_tx {
            // A disconnected receiver just means nobody is replaying live.
            let _ = tx.send(seed.clone());
        }
        self.span_seeds.push(seed);
    }

    fn next_event_cycle(&self) -> u64 {
        let mut next = self.next_timer;
        if let Some(op) = self.disk.in_flight() {
            next = next.min(op.complete_at);
        }
        if let Some(p) = self.next_packet {
            next = next.min(p);
        }
        if let Some(inj) = self.injections.front() {
            next = next.min(inj.at_cycle);
        }
        next
    }

    fn service_due_events(&mut self) {
        let now = self.vm.cycles();
        // Timer.
        while self.next_timer <= now {
            self.pending_irqs.push_back(IRQ_TIMER);
            self.next_timer += self.timer_period + self.nondet.timer_jitter(self.timer_period);
        }
        // Disk completion.
        if let Some(op) = self.disk.in_flight() {
            if op.complete_at <= now {
                self.disk.complete(&mut self.vm);
                self.pending_irqs.push_back(IRQ_DISK);
            }
        }
        // Benign packet arrivals.
        while let Some(at) = self.next_packet {
            if at > now {
                break;
            }
            let payload = self.nondet.benign_packet(&self.net);
            self.nic.enqueue_rx(payload);
            self.next_packet = self.net.mean_interarrival.map(|m| at + self.nondet.packet_gap(m));
        }
        // Crafted injections.
        while self.injections.front().is_some_and(|i| i.at_cycle <= now) {
            let inj = self.injections.pop_front().expect("front checked");
            self.nic.enqueue_rx(inj.payload);
        }
        self.try_deliver_nic();
    }

    fn try_deliver_nic(&mut self) {
        if let Some(frame) = self.nic.deliver(&mut self.vm) {
            if self.config.mode.is_recording() {
                let rec = Record::Dma {
                    source: rnr_log::DmaSource::Nic,
                    addr: layout::NIC_RX_BUF,
                    data: frame,
                    at_insn: self.vm.retired(),
                };
                self.charge(Category::Network, self.config.costs.log_append(rec.encoded_len()));
                self.emit(rec);
            }
            self.pending_irqs.push_back(IRQ_NIC);
        }
    }

    fn try_inject_pending(&mut self) {
        while let Some(&irq) = self.pending_irqs.front() {
            if !self.vm.can_inject() {
                self.vm.request_interrupt_window();
                return;
            }
            match self.vm.inject_interrupt(irq) {
                Ok(()) => {
                    self.pending_irqs.pop_front();
                    if self.config.mode.is_recording() {
                        let rec = Record::Interrupt { irq, at_insn: self.vm.retired() };
                        self.charge(
                            Category::Interrupt,
                            self.config.costs.vmexit + self.config.costs.log_append(rec.encoded_len()),
                        );
                        self.emit(rec);
                    } else {
                        self.charge(Category::Interrupt, self.config.costs.irq_virtualized);
                    }
                }
                Err(rnr_machine::InjectError::BadVector(_)) => {
                    // Before the guest installs its IVT (early boot): drop.
                    self.pending_irqs.pop_front();
                }
                Err(_) => {
                    self.vm.request_interrupt_window();
                    return;
                }
            }
        }
    }

    fn charge(&mut self, category: Category, cycles: u64) {
        self.vm.add_cycles(cycles);
        self.attribution.charge(category, cycles);
    }

    fn handle_exit(&mut self, exit: Exit) {
        let costs = self.config.costs;
        let recording = self.config.mode.is_recording();
        match exit {
            Exit::BudgetExhausted | Exit::InterruptWindow => {}
            Exit::Halt => {
                // Idle guest: fast-forward virtual time to the next event.
                let next = self.next_event_cycle().max(self.vm.cycles() + 1);
                let now = self.vm.cycles();
                self.vm.add_cycles(next - now);
            }
            Exit::Rdtsc { rd } => {
                let value = self.vm.cycles() + self.nondet.tsc_jitter();
                self.charge(Category::Rdtsc, costs.vmexit);
                if recording {
                    let rec = Record::Rdtsc { value };
                    self.charge(Category::Rdtsc, costs.log_append(rec.encoded_len()));
                    self.emit(rec);
                }
                self.vm.finish_io(FinishIo::Read { rd, value });
            }
            Exit::PioIn { rd, port } => {
                let value = match port {
                    PORT_RNG => self.nondet.rng_port(),
                    _ => 0,
                };
                self.charge(Category::PioMmio, costs.vmexit);
                if recording {
                    let rec = Record::PioIn { port, value };
                    self.charge(Category::PioMmio, costs.log_append(rec.encoded_len()));
                    self.emit(rec);
                }
                self.vm.finish_io(FinishIo::Read { rd, value });
            }
            Exit::PioOut { port, value } => {
                self.charge(Category::PioMmio, costs.vmexit);
                match port {
                    PORT_DISK_SECTOR | PORT_DISK_ADDR | PORT_DISK_COUNT | PORT_DISK_CMD
                        if self.disk.handle_out(port, value, 0) =>
                    {
                        // A command write started an operation; latch writes
                        // fall through to the arm below.
                        let op = self.disk.in_flight().expect("just started");
                        if self.config.trace > 0 {
                            self.disk_ops.push(op);
                        }
                        let latency = self.nondet.disk_latency(
                            op.count.max(1),
                            costs.disk_latency_base,
                            costs.disk_latency_per_sector,
                        );
                        self.disk.set_complete_at(self.vm.cycles() + latency);
                    }
                    PORT_NIC_TX_ADDR | PORT_NIC_TX_LEN | PORT_NIC_TX_CMD => {
                        self.nic.handle_out(port, value, &self.vm);
                    }
                    PORT_CONSOLE => self.console.push(value as u8),
                    // VRT doorbells: deterministic guest-visible no-ops (no
                    // readable state, no interrupt), so no log records — the
                    // replayer's generic PioOut arm charges the same vmexit
                    // and keeps cycle parity.
                    PORT_VRT_BASE => self.vrt_base = value,
                    PORT_VRT_LEN => self.vrt_len = value,
                    PORT_VRT_CMD => match value {
                        VRT_CMD_DECLARE => self.vm.vrt_declare(self.vrt_base, self.vrt_len),
                        VRT_CMD_RETIRE => self.vm.vrt_retire(self.vrt_base),
                        _ => {}
                    },
                    _ => {}
                }
                self.vm.finish_io(FinishIo::Write);
            }
            Exit::MmioRead { rd, addr } => {
                let value = match addr {
                    MMIO_NIC_RX_PENDING => self.nic.rx_pending() as u64 + (self.nic.mailbox_len() > 0) as u64,
                    MMIO_NIC_RX_LEN => self.nic.mailbox_len(),
                    _ => 0,
                };
                self.charge(Category::PioMmio, costs.vmexit);
                if recording {
                    let rec = Record::MmioRead { addr, value };
                    self.charge(Category::PioMmio, costs.log_append(rec.encoded_len()));
                    self.emit(rec);
                }
                self.vm.finish_io(FinishIo::Read { rd, value });
            }
            Exit::MmioWrite { addr, value: _ } => {
                self.charge(Category::PioMmio, costs.vmexit);
                if addr == MMIO_NIC_RX_POP {
                    self.nic.pop_mailbox();
                }
                self.vm.finish_io(FinishIo::Write);
                if addr == MMIO_NIC_RX_POP {
                    self.try_deliver_nic();
                }
            }
            Exit::Vmcall => self.handle_vmcall(),
            Exit::Breakpoint { pc } => self.handle_breakpoint(pc),
            Exit::RasEvict { evicted, ret_addr } => {
                if let Some(f) = self.fig8.as_mut() {
                    f.on_call(ret_addr);
                }
                if recording {
                    let rec = Record::Evict { tid: self.current_tid, addr: evicted };
                    self.charge(Category::Ras, costs.vmexit + costs.log_append(rec.encoded_len()));
                    self.emit(rec);
                }
            }
            Exit::JopAlarm { branch_pc, target } => {
                self.alarms += 1;
                if self.config.stall_on_alarm {
                    self.stalled = true;
                }
                if recording {
                    let rec = Record::JopAlarm {
                        tid: self.current_tid,
                        branch_pc,
                        target,
                        at_insn: self.vm.retired(),
                        at_cycle: self.vm.cycles(),
                    };
                    self.charge(Category::Ras, costs.vmexit + costs.log_append(rec.encoded_len()));
                    self.emit(rec);
                }
            }
            Exit::VrtAlarm { kind, addr } => {
                self.alarms += 1;
                if self.config.stall_on_alarm {
                    self.stalled = true;
                }
                if recording {
                    let rec = Record::VrtAlarm(VrtAlarmInfo {
                        tid: self.current_tid,
                        kind,
                        addr,
                        at_insn: self.vm.retired(),
                        at_cycle: self.vm.cycles(),
                    });
                    self.charge(Category::Ras, costs.vmexit + costs.log_append(rec.encoded_len()));
                    self.emit(rec);
                }
            }
            Exit::RasMispredict(m) => {
                self.alarms += 1;
                if self.config.stall_on_alarm {
                    self.stalled = true;
                }
                if let Some(f) = self.fig8.as_mut() {
                    f.on_ret(m.ret_pc, m.actual);
                }
                if recording {
                    let rec = Record::Alarm(AlarmInfo {
                        tid: self.current_tid,
                        mispredict: m,
                        at_insn: self.vm.retired(),
                        at_cycle: self.vm.cycles(),
                    });
                    self.charge(Category::Ras, costs.vmexit + costs.log_append(rec.encoded_len()));
                    self.emit(rec);
                }
            }
            Exit::CallTrap { ret_addr, .. } => {
                if let Some(f) = self.fig8.as_mut() {
                    f.on_call(ret_addr);
                }
            }
            Exit::RetTrap { ret_pc, target } => {
                if let Some(f) = self.fig8.as_mut() {
                    f.on_ret(ret_pc, target);
                }
            }
            Exit::Fault(kind) => {
                self.fault = Some(kind);
            }
        }
    }

    fn handle_vmcall(&mut self) {
        let costs = self.config.costs;
        let op = self.vm.cpu().reg(Reg::R1);
        let a2 = self.vm.cpu().reg(Reg::R2);
        let a3 = self.vm.cpu().reg(Reg::R3);
        let a4 = self.vm.cpu().reg(Reg::R4);
        self.charge(Category::PioMmio, costs.pv_hypercall);
        let result = match op {
            layout::pv::DISK_READ | layout::pv::DISK_WRITE => {
                let cmd = if op == layout::pv::DISK_READ {
                    rnr_machine::DISK_CMD_READ
                } else {
                    rnr_machine::DISK_CMD_WRITE
                };
                self.disk.handle_out(PORT_DISK_SECTOR, a2, 0);
                self.disk.handle_out(PORT_DISK_ADDR, a3, 0);
                self.disk.handle_out(PORT_DISK_COUNT, a4, 0);
                self.disk.handle_out(PORT_DISK_CMD, cmd, 0);
                self.disk.complete(&mut self.vm);
                // PV avoids the per-access exits and overlaps/merges
                // requests (virtio-style queueing): model as half the
                // effective device latency, still far from free.
                let latency = self.nondet.disk_latency(
                    a4.max(1),
                    costs.disk_latency_base,
                    costs.disk_latency_per_sector,
                );
                self.vm.add_cycles(latency / 2);
                0
            }
            layout::pv::NET_RECV => {
                // Blocking poll: fast-forward to the next arrival if idle.
                if self.nic.rx_pending() == 0 {
                    if let Some(at) = self.next_arrival_cycle() {
                        let now = self.vm.cycles();
                        if at > now {
                            self.vm.add_cycles(at - now);
                        }
                        self.service_net_arrivals();
                    }
                }
                match self.nic.take_rx() {
                    Some(mut frame) => {
                        let padded = frame.len().div_ceil(32) * 32;
                        frame.resize(padded.min(layout::NIC_MTU), 0);
                        let len = frame.len() as u64;
                        let _ = self.vm.mem_mut().write_bytes(a2, &frame);
                        len
                    }
                    None => u64::MAX,
                }
            }
            layout::pv::NET_TX => {
                self.nic.handle_out(PORT_NIC_TX_ADDR, a2, &self.vm);
                self.nic.handle_out(PORT_NIC_TX_LEN, a3, &self.vm);
                self.nic.handle_out(PORT_NIC_TX_CMD, 1, &self.vm);
                0
            }
            _ => u64::MAX,
        };
        self.vm.finish_io(FinishIo::Read { rd: Reg::R1, value: result });
    }

    fn next_arrival_cycle(&self) -> Option<u64> {
        match (self.next_packet, self.injections.front().map(|i| i.at_cycle)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    fn service_net_arrivals(&mut self) {
        let now = self.vm.cycles();
        while let Some(at) = self.next_packet {
            if at > now {
                break;
            }
            let payload = self.nondet.benign_packet(&self.net);
            self.nic.enqueue_rx(payload);
            self.next_packet = self.net.mean_interarrival.map(|m| at + self.nondet.packet_gap(m));
        }
        while self.injections.front().is_some_and(|i| i.at_cycle <= now) {
            let inj = self.injections.pop_front().expect("front checked");
            self.nic.enqueue_rx(inj.payload);
        }
    }

    fn handle_breakpoint(&mut self, pc: rnr_isa::Addr) {
        let costs = self.config.costs;
        if pc == self.intro.switch_sp_trap() {
            self.context_switches += 1;
            if self.config.trace > 0 {
                self.switch_trace.push(self.vm.cycles());
            }
            let next = self.intro.next_thread_at_switch(&self.vm).unwrap_or(self.current_tid);
            let prev = self.current_tid;
            if let Some(saved) = self.vm.cpu_mut().ras.save_backras() {
                if self.dying == Some(prev) {
                    self.backras.remove(prev);
                    self.dying = None;
                } else {
                    self.backras.save(prev, saved);
                }
            }
            let entry = self.backras.load(next);
            self.vm.cpu_mut().ras.restore_backras(&entry);
            self.charge(Category::Ras, costs.vmexit + costs.ras_save + costs.ras_restore);
            if let Some(f) = self.fig8.as_mut() {
                f.on_context_switch(next);
            }
            self.current_tid = next;
        } else if pc == self.intro.thread_create_trap() {
            let tid = self.intro.thread_at_commit(&self.vm);
            self.backras.allocate(tid);
            self.charge(Category::Ras, costs.vmexit);
        } else if pc == self.intro.thread_exit_trap() {
            let tid = self.intro.thread_at_commit(&self.vm);
            self.dying = Some(tid);
            if let Some(f) = self.fig8.as_mut() {
                f.on_thread_exit(tid);
            }
            self.charge(Category::Ras, costs.vmexit);
        }
        self.vm.skip_breakpoint_once();
    }
}

/// Combines the VM and disk digests into one verification digest.
pub(crate) fn combined_digest(vm: &GuestVm, disk: &DiskDevice) -> Digest {
    let mut h = Fnv1a::new();
    h.update_u64(vm.digest().0);
    h.update_u64(disk.store().digest().0);
    h.finish()
}
