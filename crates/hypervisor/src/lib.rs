//! # rnr-hypervisor: device emulation, introspection, and the recorder
//!
//! This crate plays the role of the paper's modified KVM hypervisor plus its
//! QEMU userspace devices (§5, §7):
//!
//! * [`DiskDevice`], [`NicDevice`], console — hypervisor-mediated virtual
//!   devices. The disk is fully deterministic (its completion *timing* is
//!   the only logged non-determinism); NIC receive payloads are logged in
//!   full, as in the paper's Figure 5(b) `network` category.
//! * [`NondetSource`] — the seeded model of everything the host makes
//!   non-deterministic: rdtsc jitter, disk latency, packet arrivals and
//!   contents, the random-number port.
//! * [`Introspector`] — guest-kernel introspection per §5.2.1: at the trap
//!   on the kernel's stack-switch instruction, find the next thread's
//!   `task_struct` from its stack pointer and read its thread ID.
//! * [`Recorder`] — the monitored-recording event loop, in the four setups
//!   of Figure 5(a): [`RecordMode::NoRecPv`], [`RecordMode::NoRec`],
//!   [`RecordMode::RecNoRas`], and full [`RecordMode::Rec`]. It produces an
//!   [`rnr_log::InputLog`] and per-[`Category`](rnr_log::Category) cycle
//!   attribution for the figure breakdowns.
//! * [`VmSpec`] — everything needed to instantiate the guest: kernel,
//!   workload images, boot table, timer period, network profile, disk seed.
//!
//! The recorder also hosts the *functional* environment of §7.2/§7.5 (QEMU
//! emulation mode in the paper): [`RecordConfig::functional_ras_analysis`]
//! traps every call/return and feeds a counterfactual
//! [`rnr_ras::RasAttribution`], regenerating Figure 8.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribution;
pub mod devices;
mod introspect;
mod nondet;
mod recorder;
mod spec;

pub use attribution::CycleAttribution;
pub use devices::{DiskDevice, NicDevice};
pub use introspect::Introspector;
pub use nondet::{NetProfile, NondetSource, PacketInjection};
pub use recorder::{RecordConfig, RecordError, RecordMode, RecordOutcome, Recorder, SpanSeed};
pub use spec::{jop_table_from_spec, VmSpec};
