//! Interpreter robustness: arbitrary byte soup must never panic the VM —
//! it either executes, exits, or faults. (Gadget-chasing attackers jump
//! into the middle of anything.)

use proptest::prelude::*;
use rnr_isa::{Assembler, Instruction, Opcode, Reg};
use rnr_machine::{Exit, GuestVm, MachineConfig, RunBudget};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Random memory contents, random entry point: the VM always reaches a
    /// clean exit within the budget.
    #[test]
    fn random_code_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 64..2048),
        entry_slot in 0usize..64,
        sp in 0x2000u64..0x3_0000,
    ) {
        let mut config = MachineConfig::default();
        config.exits.rdtsc_exiting = false;
        let mut vm = GuestVm::new(config, &[]);
        vm.mem_mut().write_bytes(0x1000, &bytes).unwrap();
        vm.set_entry(0x1000 + (entry_slot as u64 * 8) % bytes.len() as u64);
        vm.cpu_mut().set_sp(sp);
        // Drive through a bounded number of exits.
        let mut retired_target = 2_000;
        for _ in 0..50 {
            match vm.run(RunBudget::until(retired_target)) {
                Exit::BudgetExhausted | Exit::Fault(_) | Exit::Halt => break,
                Exit::Rdtsc { rd } | Exit::PioIn { rd, .. } | Exit::MmioRead { rd, .. } => {
                    vm.finish_io(rnr_machine::FinishIo::Read { rd, value: 7 });
                }
                Exit::PioOut { .. } | Exit::MmioWrite { .. } => {
                    vm.finish_io(rnr_machine::FinishIo::Write);
                }
                Exit::Vmcall => {
                    vm.finish_io(rnr_machine::FinishIo::Read { rd: Reg::R1, value: 0 });
                }
                Exit::Breakpoint { .. } => vm.skip_breakpoint_once(),
                _ => {}
            }
            retired_target = vm.retired() + 100;
        }
    }

    /// Every decodable instruction executes without panicking, from any
    /// register state.
    #[test]
    fn every_opcode_executes_safely(
        op_byte in 0u8..=0xff,
        rd in 0u8..16,
        rs1 in 0u8..16,
        rs2 in 0u8..16,
        imm in any::<i32>(),
        regs in prop::collection::vec(any::<u64>(), 16),
    ) {
        let Ok(op) = Opcode::from_byte(op_byte) else { return Ok(()) };
        let insn = Instruction::new(op, Reg::from_index(rd), Reg::from_index(rs1), Reg::from_index(rs2), imm);
        let mut asm = Assembler::new(0x1000);
        asm.emit(insn);
        asm.hlt();
        let image = asm.assemble().unwrap();
        let mut config = MachineConfig::default();
        config.exits.rdtsc_exiting = false;
        let mut vm = GuestVm::new(config, &[&image]);
        vm.set_entry(0x1000);
        for (i, r) in Reg::ALL.into_iter().enumerate() {
            vm.cpu_mut().set_reg(r, regs[i]);
        }
        // Clamp sp into memory so pushes have somewhere to go (pushes to
        // wild sp must fault, not panic — also exercised).
        let _ = vm.run(RunBudget::until(4));
    }
}

/// Every slot of the kernel's text decodes — the fixed 8-byte encoding is
/// total over the code region (the gadget scanner depends on this).
#[test]
fn kernel_text_is_fully_decodable() {
    let kernel = rnr_guest::KernelBuilder::new().build();
    let image = kernel.image();
    // Code runs from the base to the data section (the first data label).
    let text_end = image.require_symbol("current");
    let mut addr = image.base();
    let mut count = 0;
    while addr < text_end {
        image.decode_at(addr).unwrap_or_else(|e| panic!("undecodable kernel text at {addr:#x}: {e}"));
        addr += 8;
        count += 1;
    }
    assert!(count > 300, "kernel text should be substantial, got {count} instructions");
}
