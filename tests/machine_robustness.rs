//! Interpreter robustness: arbitrary byte soup must never panic the VM —
//! it either executes, exits, or faults. (Gadget-chasing attackers jump
//! into the middle of anything.)

use proptest::prelude::*;
use rnr_isa::{Assembler, Instruction, Opcode, Reg};
use rnr_machine::{Exit, GuestVm, MachineConfig, RunBudget};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Random memory contents, random entry point: the VM always reaches a
    /// clean exit within the budget.
    #[test]
    fn random_code_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 64..2048),
        entry_slot in 0usize..64,
        sp in 0x2000u64..0x3_0000,
    ) {
        let mut config = MachineConfig::default();
        config.exits.rdtsc_exiting = false;
        let mut vm = GuestVm::new(config, &[]);
        vm.mem_mut().write_bytes(0x1000, &bytes).unwrap();
        vm.set_entry(0x1000 + (entry_slot as u64 * 8) % bytes.len() as u64);
        vm.cpu_mut().set_sp(sp);
        // Drive through a bounded number of exits.
        let mut retired_target = 2_000;
        for _ in 0..50 {
            match vm.run(RunBudget::until(retired_target)) {
                Exit::BudgetExhausted | Exit::Fault(_) | Exit::Halt => break,
                Exit::Rdtsc { rd } | Exit::PioIn { rd, .. } | Exit::MmioRead { rd, .. } => {
                    vm.finish_io(rnr_machine::FinishIo::Read { rd, value: 7 });
                }
                Exit::PioOut { .. } | Exit::MmioWrite { .. } => {
                    vm.finish_io(rnr_machine::FinishIo::Write);
                }
                Exit::Vmcall => {
                    vm.finish_io(rnr_machine::FinishIo::Read { rd: Reg::R1, value: 0 });
                }
                Exit::Breakpoint { .. } => vm.skip_breakpoint_once(),
                _ => {}
            }
            retired_target = vm.retired() + 100;
        }
    }

    /// Differential check of the three execution engines — single-step,
    /// block dispatch, superblock traces — on randomized hot loops: the
    /// exit sequence, retired count, and virtual cycles at every exit, the
    /// final digest, and the loop's accumulator register must be identical.
    /// The iteration count is drawn past the trace-formation threshold so
    /// the superblock run genuinely forms and dispatches traces; the budget
    /// schedule is chopped at random offsets so traces are sliced by the
    /// event horizon mid-body; an optional self-modifying store rewrites an
    /// op byte inside the traced loop to exercise precise invalidation.
    #[test]
    fn execution_engines_agree_on_random_hot_loops(
        iters in 80i32..150,
        chunks in prop::collection::vec(3u64..97, 4..12),
        ops in prop::collection::vec(0u8..6, 2..8),
        smc in any::<bool>(),
    ) {
        let image = {
            let mut asm = Assembler::new(0x1000);
            asm.movi(Reg::R1, 0);
            asm.movi(Reg::R6, iters);
            if smc {
                let patch = Instruction::new(Opcode::Addi, Reg::R2, Reg::R2, Reg::R0, 5);
                asm.lea(Reg::R5, "patch");
                asm.movi64(Reg::R4, u64::from_le_bytes(patch.encode()));
            }
            asm.label("loop");
            asm.addi(Reg::R1, Reg::R1, 1);
            for &op in &ops {
                match op {
                    0 => asm.addi(Reg::R2, Reg::R2, 3),
                    1 => asm.xor(Reg::R3, Reg::R1, Reg::R2),
                    2 => asm.add(Reg::R2, Reg::R2, Reg::R3),
                    3 => asm.mul(Reg::R3, Reg::R2, Reg::R1),
                    4 => asm.shli(Reg::R3, Reg::R2, 3),
                    _ => asm.sub(Reg::R3, Reg::R1, Reg::R2),
                };
            }
            if smc {
                asm.st(Reg::R5, 0, Reg::R4);
                asm.label("patch");
                asm.nop(); // becomes `addi r2, r2, 5` after the first pass
            }
            asm.bne(Reg::R1, Reg::R6, "loop");
            asm.hlt();
            asm.assemble().unwrap()
        };
        let run = |block_engine: bool, superblocks: bool| {
            let cfg = MachineConfig { block_engine, superblocks, ..MachineConfig::default() };
            let mut vm = GuestVm::new(cfg, &[&image]);
            vm.set_entry(image.base());
            vm.cpu_mut().set_sp(0x8000);
            let mut events = Vec::new();
            let mut target = 0u64;
            for i in 0.. {
                target += chunks[i % chunks.len()];
                let exit = vm.run(RunBudget::until(target));
                events.push((exit.clone(), vm.retired(), vm.cycles()));
                if !matches!(exit, Exit::BudgetExhausted) || i > 20_000 {
                    break;
                }
            }
            let trace_hits = vm.block_stats().trace_hits;
            ((events, vm.digest(), vm.cpu().reg(Reg::R2)), trace_hits)
        };
        let (stepped, _) = run(false, false);
        let (blocks, block_traces) = run(true, false);
        let (traced, trace_hits) = run(true, true);
        prop_assert!(matches!(stepped.0.last(), Some((Exit::Halt, ..))));
        prop_assert_eq!(&blocks, &stepped, "block engine diverged from single-step");
        prop_assert_eq!(&traced, &stepped, "superblock traces diverged from single-step");
        prop_assert_eq!(block_traces, 0, "trace stats leaked from a blocks-only run");
        // With the self-modifying store the block engine's SMC early-commit
        // fires every pass and edge profiling never sees the back edge, so
        // no trace forms — only the clean loop must actually trace.
        prop_assert!(smc || trace_hits > 0, "hot loop never dispatched a trace");
    }

    /// Every decodable instruction executes without panicking, from any
    /// register state.
    #[test]
    fn every_opcode_executes_safely(
        op_byte in 0u8..=0xff,
        rd in 0u8..16,
        rs1 in 0u8..16,
        rs2 in 0u8..16,
        imm in any::<i32>(),
        regs in prop::collection::vec(any::<u64>(), 16),
    ) {
        let Ok(op) = Opcode::from_byte(op_byte) else { return Ok(()) };
        let insn = Instruction::new(op, Reg::from_index(rd), Reg::from_index(rs1), Reg::from_index(rs2), imm);
        let mut asm = Assembler::new(0x1000);
        asm.emit(insn);
        asm.hlt();
        let image = asm.assemble().unwrap();
        let mut config = MachineConfig::default();
        config.exits.rdtsc_exiting = false;
        let mut vm = GuestVm::new(config, &[&image]);
        vm.set_entry(0x1000);
        for (i, r) in Reg::ALL.into_iter().enumerate() {
            vm.cpu_mut().set_reg(r, regs[i]);
        }
        // Clamp sp into memory so pushes have somewhere to go (pushes to
        // wild sp must fault, not panic — also exercised).
        let _ = vm.run(RunBudget::until(4));
    }
}

/// Every slot of the kernel's text decodes — the fixed 8-byte encoding is
/// total over the code region (the gadget scanner depends on this).
#[test]
fn kernel_text_is_fully_decodable() {
    let kernel = rnr_guest::KernelBuilder::new().build();
    let image = kernel.image();
    // Code runs from the base to the data section (the first data label).
    let text_end = image.require_symbol("current");
    let mut addr = image.base();
    let mut count = 0;
    while addr < text_end {
        image.decode_at(addr).unwrap_or_else(|e| panic!("undecodable kernel text at {addr:#x}: {e}"));
        addr += 8;
        count += 1;
    }
    assert!(count > 300, "kernel text should be substantial, got {count} instructions");
}
