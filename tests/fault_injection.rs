//! End-to-end fault-injection tests: the self-healing pipeline must absorb
//! every recoverable seeded fault without changing the report, and fail
//! structurally (never panic) on the unrecoverable one.

use rnr_log::{fault_scenarios, unrecoverable_scenario, FaultPlan, TransportFault, TransportFaultKind};
use rnr_replay::ReplayError;
use rnr_safe::{Pipeline, PipelineConfig, PipelineError, PipelineReport};
use rnr_workloads::{Workload, WorkloadParams};

const SEED: u64 = 42;

/// The attack pipeline under one fault plan — same workload and knobs as
/// the pipeline-equivalence suite, so alarms, escalation, and a confirmed
/// ROP verdict are all on the replay path the faults disturb.
fn attack_run(plan: FaultPlan) -> Result<PipelineReport, PipelineError> {
    let (spec, _attack) =
        rnr_attacks::mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).expect("attack mounts");
    let cfg = PipelineConfig {
        duration_insns: 900_000,
        checkpoint_interval_secs: Some(0.125),
        fault_plan: plan,
        ..PipelineConfig::default()
    };
    Pipeline::new(spec, cfg).run()
}

#[test]
fn empty_fault_plan_reports_no_recovery_activity() {
    let report = attack_run(FaultPlan::default()).expect("fault-free pipeline completes");
    assert!(report.replay.verified);
    assert!(!report.recovery.any(), "clean run must not report recovery: {:?}", report.recovery);
    assert!(report.recovery.rewind_trail.is_empty());
}

#[test]
fn every_recoverable_scenario_heals_to_an_identical_report() {
    let reference = attack_run(FaultPlan::default()).expect("fault-free pipeline completes");
    let reference_json = reference.to_json();
    for (name, plan) in fault_scenarios(SEED) {
        let report = attack_run(plan).unwrap_or_else(|e| panic!("{name}: pipeline failed: {e}"));
        assert!(report.replay.verified, "{name}: final digest must still verify");
        assert_eq!(report.to_json(), reference_json, "{name}: recovered report must be byte-identical");
        assert!(report.recovery.any(), "{name}: the fault must leave a trace in the recovery block");
        assert!(report.recovery.failed_cases.is_empty(), "{name}: no alarm case may stay unresolved");
    }
}

#[test]
fn transport_faults_heal_on_a_benign_workload_too() {
    let cfg = |plan| PipelineConfig { duration_insns: 250_000, fault_plan: plan, ..Default::default() };
    let reference =
        Pipeline::new(Workload::Mysql.spec(false), cfg(FaultPlan::default())).run().expect("clean run");
    let plan = FaultPlan {
        seed: SEED,
        transport: vec![TransportFault {
            seq: 1,
            kind: TransportFaultKind::CorruptBit,
            poison_retained: false,
        }],
        ..FaultPlan::default()
    };
    let report = Pipeline::new(Workload::Mysql.spec(false), cfg(plan)).run().expect("healed run");
    assert_eq!(report.to_json(), reference.to_json());
    assert!(report.recovery.transport.faults_detected >= 1);
    assert_eq!(report.recovery.transport.batches_refetched, 1);
    assert!(report.recovery.cr_rewinds >= 1);
    assert_eq!(report.recovery.rewind_trail.len(), report.recovery.cr_rewinds as usize);
}

#[test]
fn transport_faults_heal_while_parallel_span_replay_is_active() {
    let cfg = |plan| PipelineConfig {
        duration_insns: 250_000,
        parallel_spans: 2,
        fault_plan: plan,
        ..Default::default()
    };
    let reference =
        Pipeline::new(Workload::Mysql.spec(false), cfg(FaultPlan::default())).run().expect("clean run");
    let plan = FaultPlan {
        seed: SEED,
        transport: vec![TransportFault {
            seq: 1,
            kind: TransportFaultKind::CorruptBit,
            poison_retained: false,
        }],
        ..FaultPlan::default()
    };
    let report = Pipeline::new(Workload::Mysql.spec(false), cfg(plan)).run().expect("healed run");
    assert_eq!(report.to_json(), reference.to_json());
    assert!(report.recovery.transport.faults_detected >= 1);
    assert!(report.recovery.transport.batches_refetched >= 1, "damaged batch must be refetched");
    assert!(report.recovery.any());
}

#[test]
fn cr_divergence_rewinds_and_refetches_under_parallel_span_replay() {
    let run = |plan| {
        let (spec, _attack) =
            rnr_attacks::mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).expect("attack mounts");
        let cfg = PipelineConfig {
            duration_insns: 900_000,
            checkpoint_interval_secs: Some(0.125),
            parallel_spans: 2,
            fault_plan: plan,
            ..PipelineConfig::default()
        };
        Pipeline::new(spec, cfg).run()
    };
    let reference = run(FaultPlan::default()).expect("clean parallel run");
    assert!(!reference.recovery.any(), "clean parallel run must not report recovery");
    let plan = FaultPlan { seed: SEED, cr_divergence_at_insn: Some(240_000), ..FaultPlan::default() };
    let report = run(plan).expect("healed run");
    assert_eq!(report.to_json(), reference.to_json(), "healed parallel report must be byte-identical");
    assert!(report.replay.verified);
    // The owning span re-executes from its seed: that rewind-and-refetch is
    // accounted exactly like a serial rewind to the last checkpoint.
    assert!(report.recovery.cr_rewinds >= 1, "span retry must be recorded as a rewind");
    assert!(!report.recovery.rewind_trail.is_empty());
}

#[test]
fn poisoned_retained_store_fails_with_structured_error_not_panic() {
    let (name, plan) = unrecoverable_scenario(SEED);
    match attack_run(plan) {
        Err(PipelineError::Replay(ReplayError::Unrecoverable { fault, .. })) => {
            assert!(
                matches!(*fault, ReplayError::Transport(_)),
                "{name}: root cause must be the transport fault, got {fault}"
            );
        }
        Err(other) => panic!("{name}: wrong error shape: {other}"),
        Ok(_) => panic!("{name}: must not succeed"),
    }
}

#[test]
fn backoff_is_charged_to_virtual_time_but_never_the_replay_clock() {
    let reference = attack_run(FaultPlan::default()).expect("clean run");
    let plan = FaultPlan {
        seed: SEED,
        transport: vec![TransportFault {
            seq: 2,
            kind: TransportFaultKind::DropFrame,
            poison_retained: false,
        }],
        ..FaultPlan::default()
    };
    let report = attack_run(plan).expect("healed run");
    // The retry backoff accumulates in the transport stats only; the CR's
    // replay clock (part of the report) is identical to the clean run.
    assert_eq!(report.replay.cycles, reference.replay.cycles);
}
