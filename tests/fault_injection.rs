//! End-to-end fault-injection tests: the self-healing pipeline must absorb
//! every recoverable seeded fault without changing the report, and fail
//! structurally (never panic) on the unrecoverable one.

use rnr_log::{
    apply_disk_fault, fault_scenarios, segment_file_name, unrecoverable_scenario, DiskFault, DiskFaultKind,
    DurableLogConfig, DurableStore, FaultPlan, TransportFault, TransportFaultKind,
};
use rnr_replay::ReplayError;
use rnr_safe::{Pipeline, PipelineConfig, PipelineError, PipelineReport};
use rnr_workloads::{Workload, WorkloadParams};

const SEED: u64 = 42;

/// A unique per-test scratch directory for durable-log stores, removed when
/// the test ends (pass or fail) so `cargo test` leaves no stray files.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("rnr-fi-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create scratch dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One frame per segment so segment indices equal frame sequence numbers.
fn durable_cfg(dir: &std::path::Path) -> DurableLogConfig {
    let mut d = DurableLogConfig::new(dir.to_path_buf());
    d.frames_per_segment = 1;
    d
}

/// The attack pipeline under one fault plan — same workload and knobs as
/// the pipeline-equivalence suite, so alarms, escalation, and a confirmed
/// ROP verdict are all on the replay path the faults disturb.
fn attack_run(plan: FaultPlan) -> Result<PipelineReport, PipelineError> {
    let (spec, _attack) =
        rnr_attacks::mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).expect("attack mounts");
    let cfg = PipelineConfig {
        duration_insns: 900_000,
        checkpoint_interval_secs: Some(0.125),
        fault_plan: plan,
        ..PipelineConfig::default()
    };
    Pipeline::new(spec, cfg).run()
}

#[test]
fn empty_fault_plan_reports_no_recovery_activity() {
    let report = attack_run(FaultPlan::default()).expect("fault-free pipeline completes");
    assert!(report.replay.verified);
    assert!(!report.recovery.any(), "clean run must not report recovery: {:?}", report.recovery);
    assert!(report.recovery.rewind_trail.is_empty());
}

#[test]
fn every_recoverable_scenario_heals_to_an_identical_report() {
    let reference = attack_run(FaultPlan::default()).expect("fault-free pipeline completes");
    let reference_json = reference.to_json();
    for (name, plan) in fault_scenarios(SEED) {
        let report = attack_run(plan).unwrap_or_else(|e| panic!("{name}: pipeline failed: {e}"));
        assert!(report.replay.verified, "{name}: final digest must still verify");
        assert_eq!(report.to_json(), reference_json, "{name}: recovered report must be byte-identical");
        assert!(report.recovery.any(), "{name}: the fault must leave a trace in the recovery block");
        assert!(report.recovery.failed_cases.is_empty(), "{name}: no alarm case may stay unresolved");
    }
}

#[test]
fn transport_faults_heal_on_a_benign_workload_too() {
    let cfg = |plan| PipelineConfig { duration_insns: 250_000, fault_plan: plan, ..Default::default() };
    let reference =
        Pipeline::new(Workload::Mysql.spec(false), cfg(FaultPlan::default())).run().expect("clean run");
    let plan = FaultPlan {
        seed: SEED,
        transport: vec![TransportFault {
            seq: 1,
            kind: TransportFaultKind::CorruptBit,
            poison_retained: false,
        }],
        ..FaultPlan::default()
    };
    let report = Pipeline::new(Workload::Mysql.spec(false), cfg(plan)).run().expect("healed run");
    assert_eq!(report.to_json(), reference.to_json());
    assert!(report.recovery.transport.faults_detected >= 1);
    assert_eq!(report.recovery.transport.batches_refetched, 1);
    assert!(report.recovery.cr_rewinds >= 1);
    assert_eq!(report.recovery.rewind_trail.len(), report.recovery.cr_rewinds as usize);
}

#[test]
fn transport_faults_heal_while_parallel_span_replay_is_active() {
    let cfg = |plan| PipelineConfig {
        duration_insns: 250_000,
        parallel_spans: 2,
        fault_plan: plan,
        ..Default::default()
    };
    let reference =
        Pipeline::new(Workload::Mysql.spec(false), cfg(FaultPlan::default())).run().expect("clean run");
    let plan = FaultPlan {
        seed: SEED,
        transport: vec![TransportFault {
            seq: 1,
            kind: TransportFaultKind::CorruptBit,
            poison_retained: false,
        }],
        ..FaultPlan::default()
    };
    let report = Pipeline::new(Workload::Mysql.spec(false), cfg(plan)).run().expect("healed run");
    assert_eq!(report.to_json(), reference.to_json());
    assert!(report.recovery.transport.faults_detected >= 1);
    assert!(report.recovery.transport.batches_refetched >= 1, "damaged batch must be refetched");
    assert!(report.recovery.any());
}

#[test]
fn cr_divergence_rewinds_and_refetches_under_parallel_span_replay() {
    let run = |plan| {
        let (spec, _attack) =
            rnr_attacks::mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).expect("attack mounts");
        let cfg = PipelineConfig {
            duration_insns: 900_000,
            checkpoint_interval_secs: Some(0.125),
            parallel_spans: 2,
            fault_plan: plan,
            ..PipelineConfig::default()
        };
        Pipeline::new(spec, cfg).run()
    };
    let reference = run(FaultPlan::default()).expect("clean parallel run");
    assert!(!reference.recovery.any(), "clean parallel run must not report recovery");
    let plan = FaultPlan { seed: SEED, cr_divergence_at_insn: Some(240_000), ..FaultPlan::default() };
    let report = run(plan).expect("healed run");
    assert_eq!(report.to_json(), reference.to_json(), "healed parallel report must be byte-identical");
    assert!(report.replay.verified);
    // The owning span re-executes from its seed: that rewind-and-refetch is
    // accounted exactly like a serial rewind to the last checkpoint.
    assert!(report.recovery.cr_rewinds >= 1, "span retry must be recorded as a rewind");
    assert!(!report.recovery.rewind_trail.is_empty());
}

/// The VRT detector family rides the same self-healing replay path as the
/// RAS: the mounted heap-overflow attack, VRT-armed, heals a corrupted
/// transport batch, a CR divergence, and an injected AR panic back to the
/// clean report — heap-overflow conviction and dismissed false positives
/// included.
#[test]
fn vrt_armed_heap_attack_heals_to_an_identical_report() {
    use rnr_safe::VerdictSummary;
    let run = |plan: FaultPlan| {
        let (spec, _attack) = rnr_attacks::mount_heap_overflow(&WorkloadParams::default(), 40);
        let cfg = PipelineConfig {
            duration_insns: 600_000,
            checkpoint_interval_secs: Some(0.125),
            vrt: Some(rnr_vrt::VrtParams::default()),
            fault_plan: plan,
            ..PipelineConfig::default()
        };
        Pipeline::new(spec, cfg).run()
    };
    let reference = run(FaultPlan::default()).expect("clean VRT-armed run");
    let convicted = reference
        .resolutions
        .iter()
        .filter(|r| {
            matches!(&r.summary, VerdictSummary::MemoryViolation { class, .. } if class == "heap-overflow")
        })
        .count();
    assert!(convicted >= 1, "clean run must convict the heap overflow");
    assert!(!reference.recovery.any(), "clean run must not report recovery");

    let scenarios = [
        // Frame 0 always exists (the heap-server log is sparser than the
        // ROP attack's, so a later frame may never stream).
        (
            "corrupt-batch",
            FaultPlan {
                seed: SEED,
                transport: vec![TransportFault {
                    seq: 0,
                    kind: TransportFaultKind::CorruptBit,
                    poison_retained: false,
                }],
                ..FaultPlan::default()
            },
        ),
        (
            "cr-divergence",
            FaultPlan { seed: SEED, cr_divergence_at_insn: Some(200_000), ..FaultPlan::default() },
        ),
        ("ar-panic", FaultPlan { seed: SEED, ar_panic_case: Some(0), ..FaultPlan::default() }),
    ];
    for (name, plan) in scenarios {
        let report = run(plan).unwrap_or_else(|e| panic!("{name}: pipeline failed: {e}"));
        assert_eq!(report.to_json(), reference.to_json(), "{name}: healed report must be byte-identical");
        assert!(report.recovery.any(), "{name}: the fault must leave a trace in the recovery block");
        assert!(report.recovery.failed_cases.is_empty(), "{name}: no alarm case may stay unresolved");
    }
}

#[test]
fn poisoned_retained_store_fails_with_structured_error_not_panic() {
    let (name, plan) = unrecoverable_scenario(SEED);
    match attack_run(plan) {
        Err(PipelineError::Replay(ReplayError::Unrecoverable { fault, .. })) => {
            assert!(
                matches!(*fault, ReplayError::Transport(_)),
                "{name}: root cause must be the transport fault, got {fault}"
            );
        }
        Err(other) => panic!("{name}: wrong error shape: {other}"),
        Ok(_) => panic!("{name}: must not succeed"),
    }
}

#[test]
fn durable_store_serves_a_refetch_from_disk() {
    let dir = TempDir::new("disk-serves");
    let cfg = |plan, durable| PipelineConfig {
        duration_insns: 250_000,
        fault_plan: plan,
        durable_log: durable,
        ..Default::default()
    };
    let reference =
        Pipeline::new(Workload::Mysql.spec(false), cfg(FaultPlan::default(), None)).run().expect("clean run");
    let plan = FaultPlan {
        seed: SEED,
        transport: vec![TransportFault {
            seq: 1,
            kind: TransportFaultKind::CorruptBit,
            poison_retained: false,
        }],
        ..FaultPlan::default()
    };
    let report = Pipeline::new(Workload::Mysql.spec(false), cfg(plan, Some(durable_cfg(&dir.0))))
        .run()
        .expect("healed run");
    assert_eq!(report.to_json(), reference.to_json(), "durable heal must be report-invisible");
    assert!(report.recovery.transport.disk_refetches >= 1, "refetch must be served from sealed segments");
}

#[test]
fn damaged_disk_copy_falls_back_to_memory_and_still_heals() {
    let cfg = |plan, durable| PipelineConfig {
        duration_insns: 250_000,
        fault_plan: plan,
        durable_log: durable,
        ..Default::default()
    };
    let reference =
        Pipeline::new(Workload::Mysql.spec(false), cfg(FaultPlan::default(), None)).run().expect("clean run");
    for kind in [
        DiskFaultKind::TornWrite,
        DiskFaultKind::BitRot,
        DiskFaultKind::MissingSegment,
        DiskFaultKind::ShortRead,
        DiskFaultKind::FailedFsync,
    ] {
        let dir = TempDir::new(&format!("disk-fallback-{kind:?}"));
        let plan = FaultPlan {
            seed: SEED,
            transport: vec![TransportFault {
                seq: 1,
                kind: TransportFaultKind::CorruptBit,
                poison_retained: false,
            }],
            disk: vec![DiskFault { segment: 1, kind }],
            ..FaultPlan::default()
        };
        let report = Pipeline::new(Workload::Mysql.spec(false), cfg(plan, Some(durable_cfg(&dir.0))))
            .run()
            .unwrap_or_else(|e| panic!("{kind:?}: pipeline failed: {e}"));
        assert_eq!(report.to_json(), reference.to_json(), "{kind:?}: heal must be report-invisible");
        assert!(
            report.recovery.transport.disk_fallbacks >= 1,
            "{kind:?}: damaged disk copy must fall back to the retained store"
        );
        assert!(report.recovery.any(), "{kind:?}: recovery must be accounted");
    }
}

#[test]
fn durable_store_reopens_and_restores_after_every_damage_kind() {
    use rnr_hypervisor::{RecordConfig, RecordMode, Recorder};
    use rnr_replay::{ReplayConfig, Replayer};

    let spec = Workload::Mysql.spec(false);
    let master = TempDir::new("reopen-master");
    let mut rc = RecordConfig::new(RecordMode::Rec, 42, 250_000);
    rc.durable_log = Some(durable_cfg(&master.0));
    let rec = Recorder::new(&spec, rc).expect("recorder").run();
    let total_frames = {
        let store = DurableStore::open(&master.0).expect("pristine store opens");
        assert!(store.scan().clean(), "pristine store must scan clean: {:?}", store.scan());
        let restored = store
            .restore_with(store.frame_count(), |_| None)
            .expect("pristine store restores without fallback");
        assert_eq!(restored.records(), rec.log.records(), "restored log must equal the recording");
        store.frame_count()
    };
    assert!(total_frames >= 2, "need at least two segments to damage");

    // The in-memory fallback: frame `seq` is the recording's records
    // re-chunked exactly as the writer framed them (one frame per segment,
    // DEFAULT_BATCH records per frame).
    let fallback = |seq: u64| {
        let batch = rnr_log::DEFAULT_BATCH;
        let records = rec.log.records();
        let start = seq as usize * batch;
        (start < records.len()).then(|| records[start..(start + batch).min(records.len())].to_vec())
    };

    for kind in [
        DiskFaultKind::BitRot,
        DiskFaultKind::ShortRead,
        DiskFaultKind::MissingSegment,
        DiskFaultKind::TornWrite,
    ] {
        // Work on a copy of the pristine store; damage the *last* segment
        // for TornWrite (a torn final write) and a mid-store one otherwise.
        let dir = TempDir::new(&format!("reopen-{kind:?}"));
        for entry in std::fs::read_dir(&master.0).unwrap() {
            let p = entry.unwrap().path();
            std::fs::copy(&p, dir.0.join(p.file_name().unwrap())).unwrap();
        }
        let target = if matches!(kind, DiskFaultKind::TornWrite) { total_frames - 1 } else { 0 };
        apply_disk_fault(&dir.0.join(segment_file_name(target)), kind, SEED ^ target).unwrap();

        let store = DurableStore::open(&dir.0).expect("damaged store opens");
        let scan = store.scan();
        assert!(!scan.clean(), "{kind:?}: damage must be visible to the scan");
        if matches!(kind, DiskFaultKind::TornWrite) {
            assert_eq!(scan.torn_tails_truncated, 1, "{kind:?}: torn tail must be truncated");
        } else if matches!(kind, DiskFaultKind::MissingSegment) {
            assert_eq!(scan.missing_spans, vec![(0, 1)], "{kind:?}: the gap must be mapped");
        } else {
            assert_eq!(scan.quarantined.len(), 1, "{kind:?}: mid-store damage must be quarantined");
        }

        let restored = store
            .restore_with(total_frames, fallback)
            .expect("every hole is covered by the in-memory fallback");
        assert_eq!(restored.records(), rec.log.records(), "{kind:?}: restore must be lossless");

        // The restored log replays to the recording's exact final state.
        let mut cr = Replayer::new(&spec, restored, ReplayConfig::default());
        cr.verify_against(rec.final_digest);
        let out = cr.run().unwrap_or_else(|e| panic!("{kind:?}: replay failed: {e}"));
        assert_eq!(out.verified, Some(true), "{kind:?}: restored log must verify");
    }
}

/// Fleet fault isolation: one session's fault plan — a CR divergence that
/// forces a rewind, an AR panic, and disk damage under its farm-owned
/// durable store — stays confined to that session. It heals to the serial
/// clean report with recovery accounted, while the quiet sibling's report
/// is byte-identical to its own clean reference with no recovery activity.
#[test]
fn farm_session_faults_and_rewinds_leave_siblings_untouched() {
    use rnr_safe::{Farm, FarmConfig, SessionSpec};
    let attack_reference = attack_run(FaultPlan::default()).expect("clean attack run");
    let quiet_cfg = PipelineConfig { duration_insns: 250_000, ..PipelineConfig::default() };
    let quiet_reference =
        Pipeline::new(Workload::Mysql.spec(false), quiet_cfg.clone()).run().expect("clean quiet run");

    let dir = TempDir::new("farm-isolation");
    let plan = FaultPlan {
        seed: SEED,
        cr_divergence_at_insn: Some(240_000),
        ar_panic_case: Some(0),
        disk: vec![DiskFault { segment: 1, kind: DiskFaultKind::BitRot }],
        ..FaultPlan::default()
    };
    let (spec, _attack) =
        rnr_attacks::mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).expect("attack mounts");
    let faulted_cfg = PipelineConfig {
        duration_insns: 900_000,
        checkpoint_interval_secs: Some(0.125),
        fault_plan: plan,
        durable_log: Some(durable_cfg(&dir.0)),
        ..PipelineConfig::default()
    };
    let sessions = vec![
        SessionSpec::new("faulted", spec, faulted_cfg),
        SessionSpec::new("quiet", Workload::Mysql.spec(false), quiet_cfg),
    ];
    let farm = Farm::new(FarmConfig { workers: 2, ..FarmConfig::default() });
    let report = farm.run(&sessions);

    let faulted =
        report.session("faulted").unwrap().result.as_ref().expect("faulted session heals, not fails");
    assert_eq!(
        faulted.to_json(),
        attack_reference.to_json(),
        "the healed fleet session must match the serial clean report"
    );
    assert!(faulted.recovery.cr_rewinds >= 1, "the CR divergence must be recorded as a rewind");
    assert!(faulted.recovery.ar_panics_caught >= 1, "the AR panic must be caught and accounted");
    assert!(faulted.recovery.failed_cases.is_empty(), "no alarm case may stay unresolved");

    let quiet = report.session("quiet").unwrap().result.as_ref().expect("sibling unaffected");
    assert_eq!(
        quiet.to_json(),
        quiet_reference.to_json(),
        "the sibling's report must be byte-identical to its clean reference"
    );
    assert!(!quiet.recovery.any(), "the sibling must report no recovery activity");
}

#[test]
fn backoff_is_charged_to_virtual_time_but_never_the_replay_clock() {
    let reference = attack_run(FaultPlan::default()).expect("clean run");
    let plan = FaultPlan {
        seed: SEED,
        transport: vec![TransportFault {
            seq: 2,
            kind: TransportFaultKind::DropFrame,
            poison_retained: false,
        }],
        ..FaultPlan::default()
    };
    let report = attack_run(plan).expect("healed run");
    // The retry backoff accumulates in the transport stats only; the CR's
    // replay clock (part of the report) is identical to the clean run.
    assert_eq!(report.replay.cycles, reference.replay.cycles);
}
