//! The §3 policy knobs and the guest-kernel corner cases the paper calls
//! out: stall-on-alarm, bug-recovery (oops) thread termination, and thread
//! ID reuse.

use rnr_attacks::mount_kernel_rop;
use rnr_guest::{layout, runtime, KernelBuilder};
use rnr_hypervisor::{Introspector, RecordConfig, RecordMode, Recorder, VmSpec};
use rnr_isa::{Assembler, Reg};
use rnr_safe::{Pipeline, PipelineConfig};
use rnr_workloads::WorkloadParams;

/// §3: "the recorded VM may be stopped until the alarm is analyzed". With
/// the stall policy the §6 attack is frozen *before* any gadget executes:
/// the privilege flag never flips.
#[test]
fn stall_on_alarm_freezes_the_attack_before_damage() {
    let (spec, _plan) = mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).unwrap();
    let cfg = PipelineConfig {
        duration_insns: 900_000,
        checkpoint_interval_secs: Some(0.125),
        stall_on_alarm: true,
        ..PipelineConfig::default()
    };
    let report = Pipeline::new(spec, cfg).run().unwrap();
    assert!(report.record.stalled, "the recorder must stall at the alarm");
    assert_eq!(report.record.priv_flag, 0, "no gadget ran: privilege never escalated");
    // The alarm replayer still convicts from the log prefix.
    assert!(report.attacks_confirmed() >= 1);
    assert!(report.replay.verified);
}

/// The continue policy (the default) lets the attack finish — the §6 demo's
/// forensic contrast.
#[test]
fn continue_policy_lets_the_attack_escalate() {
    let (spec, _plan) = mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).unwrap();
    let cfg = PipelineConfig {
        duration_insns: 900_000,
        checkpoint_interval_secs: Some(0.125),
        stall_on_alarm: false,
        ..PipelineConfig::default()
    };
    let report = Pipeline::new(spec, cfg).run().unwrap();
    assert!(!report.record.stalled);
    assert_eq!(report.record.priv_flag, 0x1337);
    assert!(report.attacks_confirmed() >= 1);
}

/// Builds a custom guest whose worker triggers the kernel bug-recovery path
/// (`SYS_OOPS`) once and then a sibling keeps running: the kernel survives,
/// the oops counter is introspectable, and replay still verifies.
#[test]
fn kernel_oops_terminates_thread_and_replay_verifies() {
    let kernel = KernelBuilder::new().build();
    let mut a = Assembler::new(layout::USER_BASE);
    // Thread A: some work, then hit a recoverable kernel bug.
    a.label("victim_main");
    a.movi(Reg::R1, 500);
    a.call("u_compute");
    a.call("u_oops"); // never returns: the kernel kills this thread
    a.label("victim_unreachable");
    a.jmp("victim_unreachable");
    // Thread B: plain compute loop.
    a.label("worker_main");
    a.movi(Reg::R1, 400);
    a.call("u_compute");
    a.jmp("worker_main");
    runtime::emit_runtime(&mut a);
    let image = a.assemble().unwrap();

    let mut spec = VmSpec::new(kernel, "oops-demo");
    spec.boot.user_thread(image.require_symbol("victim_main"));
    spec.boot.user_thread(image.require_symbol("worker_main"));
    spec.extra_images.push(image);

    let rec = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, 3, 200_000)).unwrap().run();
    assert!(rec.fault.is_none(), "{:?}", rec.fault);
    assert_eq!(rec.retired, 200_000, "the surviving worker keeps the guest running");
    // The oops path logged its console marker and bumped the counter.
    assert!(rec.console.contains(&b'!'), "oops marker expected");

    // Replay reproduces the oops bit-exactly.
    let mut r = rnr_replay::Replayer::new(
        &spec,
        std::sync::Arc::clone(&rec.log),
        rnr_replay::ReplayConfig::default(),
    );
    r.verify_against(rec.final_digest);
    let out = r.run().unwrap();
    assert_eq!(out.verified, Some(true));
    assert_eq!(out.console, rec.console);
}

/// §5.2.2: thread IDs are reused, and the BackRAS recycling keeps reused
/// IDs from inheriting stale return addresses. The spawner churns through
/// short-lived children far beyond the slot count.
#[test]
fn thread_id_reuse_is_clean() {
    let kernel = KernelBuilder::new().build();
    let intro = Introspector::new(&kernel);
    let mut a = Assembler::new(layout::USER_BASE);
    a.label("spawner_main");
    a.label("sp_loop");
    a.lea(Reg::R1, "child_main");
    a.movi(Reg::R2, 0);
    a.call("u_spawn");
    a.call("u_yield");
    a.jmp("sp_loop");
    a.label("child_main");
    a.movi(Reg::R1, 60);
    a.call("u_recurse"); // deeper than the RAS: exercises evict + underflow
    a.call("u_exit");
    runtime::emit_runtime(&mut a);
    let image = a.assemble().unwrap();

    let mut spec = VmSpec::new(kernel, "reuse-demo");
    spec.boot.user_thread(image.require_symbol("spawner_main"));
    spec.extra_images.push(image);

    let mut rc = RecordConfig::new(RecordMode::Rec, 9, 400_000);
    rc.ras_capacity = 16;
    let rec = Recorder::new(&spec, rc).unwrap().run();
    assert!(rec.fault.is_none(), "{:?}", rec.fault);
    let _ = intro; // introspector built from the same contract

    // Massive churn happened (far more creations than slots)...
    assert!(rec.context_switches > 50, "switch churn expected, got {}", rec.context_switches);
    // ...and the CR resolves every resulting underflow via evict matching:
    // nothing of this benign churn survives to an alarm replayer as an
    // attack.
    let log = std::sync::Arc::clone(&rec.log);
    let out = rnr_replay::Replayer::new(
        &spec,
        std::sync::Arc::clone(&log),
        rnr_replay::ReplayConfig { ras_capacity: 16, ..rnr_replay::ReplayConfig::default() },
    )
    .run()
    .unwrap();
    let ar = rnr_replay::AlarmReplayer::new(&spec, log)
        .with_config(rnr_replay::ReplayConfig { ras_capacity: 16, ..rnr_replay::ReplayConfig::default() });
    for case in &out.alarm_cases {
        let (verdict, _) = ar.resolve(case).unwrap();
        assert!(!verdict.is_attack(), "churn misclassified: {:?} -> {verdict:?}", case.kind);
    }
}

/// Parallel and sequential alarm replay produce identical verdicts
/// (determinism survives concurrency).
#[test]
fn parallel_alarm_replay_matches_sequential() {
    let (spec, _plan) = mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).unwrap();
    let run = |parallel| {
        let cfg = PipelineConfig {
            duration_insns: 900_000,
            checkpoint_interval_secs: Some(0.125),
            parallel_alarm_replay: parallel,
            ..PipelineConfig::default()
        };
        Pipeline::new(spec.clone(), cfg).run().unwrap()
    };
    let par = run(true);
    let seq = run(false);
    assert_eq!(par.resolutions.len(), seq.resolutions.len());
    assert_eq!(par.attacks_confirmed(), seq.attacks_confirmed());
    for (a, b) in par.resolutions.iter().zip(&seq.resolutions) {
        assert_eq!(a.at_insn, b.at_insn);
        assert_eq!(a.verdict.is_attack(), b.verdict.is_attack());
        assert_eq!(a.ar_cycles, b.ar_cycles);
    }
}
