//! Property tests on the RAS models: the soundness invariant RnR-Safe rests
//! on ("false negatives are not acceptable", §3.1).

use proptest::prelude::*;
use rnr_ras::{
    RasAttribution, RasConfig, RasOutcome, RasUnit, ShadowOutcome, ShadowRas, ThreadId, Whitelists,
};

/// A benign instruction stream: calls and returns generated from an explicit
/// ground-truth stack, interleaved with context switches.
#[derive(Debug, Clone)]
enum Event {
    Call,
    Ret,
    Switch(u8),
}

fn event_strategy() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec(
        prop_oneof![
            3 => Just(Event::Call),
            3 => Just(Event::Ret),
            1 => (0u8..4).prop_map(Event::Switch),
        ],
        0..300,
    )
}

/// Drives a full benign multithreaded execution against the lockstep
/// analyzer: with BackRAS + whitelists and no hardware-capacity pressure
/// (large RAS), a benign run must pass zero unexplained alarms.
#[test]
fn benign_streams_raise_no_unexplained_alarms() {
    let mut runner = proptest::test_runner::TestRunner::default();
    runner
        .run(&event_strategy(), |events| {
            let mut analyzer = RasAttribution::new(1024, Whitelists::new(), ThreadId(0));
            // Ground truth: per-thread stacks of return addresses.
            let mut stacks: Vec<Vec<u64>> = vec![Vec::new(); 4];
            let mut current = 0usize;
            let mut next_addr = 0x1000u64;
            for e in events {
                match e {
                    Event::Call => {
                        next_addr += 8;
                        stacks[current].push(next_addr);
                        analyzer.on_call(next_addr);
                    }
                    Event::Ret => {
                        if let Some(addr) = stacks[current].pop() {
                            analyzer.on_ret(0x42, addr);
                        }
                    }
                    Event::Switch(t) => {
                        current = t as usize;
                        analyzer.on_context_switch(ThreadId(t as u64));
                    }
                }
            }
            let report = analyzer.report();
            prop_assert_eq!(report.passed(), 0, "benign run leaked alarms: {:?}", report);
            Ok(())
        })
        .unwrap();
}

/// Soundness: corrupting any pending return address forces an alarm — the
/// RAS may be imprecise, but a hijacked return never predicts "hit".
#[test]
fn hijacked_returns_always_alarm() {
    let mut runner = proptest::test_runner::TestRunner::default();
    let strategy = (1usize..60, any::<u64>());
    runner
        .run(&strategy, |(depth, hijack_seed)| {
            let mut ras = RasUnit::new(RasConfig::extended(128));
            let mut truth = Vec::new();
            for i in 0..depth {
                let addr = 0x1000 + i as u64 * 8;
                truth.push(addr);
                ras.on_call(addr);
            }
            // The attacker overwrites the top return address with anything
            // that is NOT the legitimate target.
            let legit = *truth.last().unwrap();
            let evil = {
                let mut v = 0x9000 + (hijack_seed % 0xFFFF) * 8;
                if v == legit {
                    v += 8;
                }
                v
            };
            match ras.on_ret(0x5000, evil) {
                RasOutcome::Mispredict(m) => {
                    prop_assert_eq!(m.actual, evil);
                    Ok(())
                }
                other => {
                    prop_assert!(false, "hijack not detected: {:?}", other);
                    Ok(())
                }
            }
        })
        .unwrap();
}

proptest! {
    /// The software shadow RAS agrees with ground truth on arbitrary benign
    /// nesting: balanced call/ret always hits, and per-slot tracking survives
    /// non-local unwinds.
    #[test]
    fn shadow_ras_tracks_ground_truth(depths in prop::collection::vec(1usize..20, 1..20)) {
        let mut shadow = ShadowRas::new(ThreadId(1), Whitelists::new());
        let mut sp = 0x8000u64;
        for (i, depth) in depths.iter().enumerate() {
            // A call tree `depth` deep, then fully unwound.
            let base = (i as u64 + 1) << 32;
            let mut frames = Vec::new();
            for d in 0..*depth {
                sp -= 8;
                let ret = base + d as u64 * 8;
                shadow.on_call(ret, sp);
                frames.push((ret, sp));
            }
            for (ret, slot) in frames.into_iter().rev() {
                let out = shadow.on_ret(0x77, ret, slot);
                prop_assert_eq!(out, ShadowOutcome::Hit { pruned: 0 });
                sp += 8;
            }
        }
        prop_assert_eq!(shadow.depth(), 0);
    }

    /// BackRAS save/restore round-trips arbitrary RAS contents.
    #[test]
    fn backras_round_trip(addrs in prop::collection::vec(any::<u64>(), 0..48)) {
        let mut unit = RasUnit::new(RasConfig::extended(64));
        for &a in &addrs {
            unit.on_call(a);
        }
        let before = unit.snapshot();
        let saved = unit.save_backras().unwrap();
        prop_assert!(unit.ras().is_empty());
        unit.restore_backras(&saved);
        prop_assert_eq!(unit.snapshot(), before);
    }
}
