//! Property tests on the input-log codec and the durable segment format.

use proptest::prelude::*;
use rnr_log::{
    decode_frame, decode_segment, encode_frame, encode_segment, get_varint, put_varint, segment_from_json,
    segment_to_json, unzigzag, zigzag, AlarmInfo, DmaSource, InputLog, Record, Segment, VrtAlarmInfo,
};
use rnr_ras::{Mispredict, MispredictKind, ThreadId};
use rnr_vrt::VrtKind;

fn record_strategy() -> impl Strategy<Value = Record> {
    prop_oneof![
        any::<u64>().prop_map(|value| Record::Rdtsc { value }),
        (any::<u16>(), any::<u64>()).prop_map(|(port, value)| Record::PioIn { port, value }),
        (any::<u64>(), any::<u64>()).prop_map(|(addr, value)| Record::MmioRead { addr, value }),
        (any::<u8>(), any::<u64>()).prop_map(|(irq, at_insn)| Record::Interrupt { irq, at_insn }),
        (any::<bool>(), any::<u64>(), prop::collection::vec(any::<u8>(), 0..300), any::<u64>()).prop_map(
            |(nic, addr, data, at_insn)| Record::Dma {
                source: if nic { DmaSource::Nic } else { DmaSource::Disk },
                addr,
                data,
                at_insn,
            }
        ),
        (any::<u64>(), any::<u64>()).prop_map(|(tid, addr)| Record::Evict { tid: ThreadId(tid), addr }),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::option::of(any::<u64>()),
            any::<u64>(),
            0u8..3,
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(tid, ret_pc, predicted, actual, kind, at_insn, at_cycle)| {
                Record::Alarm(AlarmInfo {
                    tid: ThreadId(tid),
                    mispredict: Mispredict {
                        ret_pc,
                        predicted,
                        actual,
                        kind: match kind {
                            0 => MispredictKind::Underflow,
                            1 => MispredictKind::TargetMismatch,
                            _ => MispredictKind::WhitelistViolation,
                        },
                    },
                    at_insn,
                    at_cycle,
                })
            }),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(tid, branch_pc, target, at_insn, at_cycle)| Record::JopAlarm {
                tid: ThreadId(tid),
                branch_pc,
                target,
                at_insn,
                at_cycle,
            }
        ),
        (any::<u64>(), any::<bool>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(tid, stack, addr, at_insn, at_cycle)| {
                Record::VrtAlarm(VrtAlarmInfo {
                    tid: ThreadId(tid),
                    kind: if stack { VrtKind::Stack } else { VrtKind::Heap },
                    addr,
                    at_insn,
                    at_cycle,
                })
            }
        ),
        (any::<u64>(), any::<u64>()).prop_map(|(at_insn, at_cycle)| Record::End { at_insn, at_cycle }),
    ]
}

proptest! {
    /// Serialize → deserialize is the identity for arbitrary logs, and the
    /// byte accounting matches the wire exactly.
    #[test]
    fn log_round_trips(records in prop::collection::vec(record_strategy(), 0..60)) {
        let log: InputLog = records.clone().into_iter().collect();
        let bytes = log.to_bytes();
        prop_assert_eq!(bytes.len() as u64, log.total_bytes());
        let back = InputLog::from_bytes(bytes).unwrap();
        prop_assert_eq!(back.records(), &records[..]);
        prop_assert_eq!(back.total_bytes(), log.total_bytes());
        for c in rnr_log::Category::ALL {
            prop_assert_eq!(back.bytes_for(c), log.bytes_for(c));
        }
    }

    /// Every record reports its exact encoded size.
    #[test]
    fn encoded_len_is_exact(record in record_strategy()) {
        let log: InputLog = std::iter::once(record.clone()).collect();
        prop_assert_eq!(log.to_bytes().len() as u64, record.encoded_len());
    }

    /// Cutting the encoding at a record boundary yields the prefix log;
    /// cutting mid-record fails cleanly (no panics, no garbage records).
    #[test]
    fn truncation_is_detected(records in prop::collection::vec(record_strategy(), 1..20), cut in any::<prop::sample::Index>()) {
        let log: InputLog = records.clone().into_iter().collect();
        let bytes = log.to_bytes();
        let mut boundaries = vec![0u64];
        for r in &records {
            boundaries.push(boundaries.last().unwrap() + r.encoded_len());
        }
        let cut = cut.index(bytes.len()) as u64;
        let truncated = bytes.slice(0..cut as usize);
        match InputLog::from_bytes(truncated) {
            Ok(prefix) => {
                let n = boundaries.iter().position(|&b| b == cut).expect("clean decode only at boundaries");
                prop_assert_eq!(prefix.records(), &records[..n]);
            }
            Err(_) => prop_assert!(!boundaries.contains(&cut)),
        }
    }

    /// Flipping any single bit of a valid encoded log is handled cleanly:
    /// the decoder either rejects it with a `CodecError` or — when the flip
    /// lands in a value field — decodes a log whose byte accounting still
    /// matches the wire exactly. It never panics and never mis-frames into
    /// a log of a different encoded length.
    #[test]
    fn bit_flips_never_panic_or_misframe(
        records in prop::collection::vec(record_strategy(), 1..20),
        flip in any::<prop::sample::Index>(),
    ) {
        let log: InputLog = records.into_iter().collect();
        let bytes = log.to_bytes();
        let mut flipped = bytes.to_vec();
        let pos = flip.index(flipped.len() * 8);
        flipped[pos / 8] ^= 1 << (pos % 8);
        let len = flipped.len() as u64;
        if let Ok(decoded) = InputLog::from_bytes(flipped.into()) {
            prop_assert_eq!(decoded.total_bytes(), len);
        }
    }

    /// The framed transport is strictly stronger: a single-bit flip
    /// anywhere in an encoded frame — header or payload — is *always*
    /// rejected (CRC32 detects every 1-bit error), and so is any
    /// truncation. Neither ever panics.
    #[test]
    fn frame_rejects_every_bit_flip_and_truncation(
        records in prop::collection::vec(record_strategy(), 0..20),
        seq in any::<u64>(),
        flip in any::<prop::sample::Index>(),
        cut in any::<prop::sample::Index>(),
    ) {
        let frame = encode_frame(seq, &records);
        prop_assert!(matches!(decode_frame(&frame), Ok((s, ref r)) if s == seq && *r == records));

        let mut flipped = frame.to_vec();
        let pos = flip.index(flipped.len() * 8);
        flipped[pos / 8] ^= 1 << (pos % 8);
        prop_assert!(decode_frame(&flipped.into()).is_err());

        let cut = cut.index(frame.len());
        prop_assert!(decode_frame(&frame.slice(0..cut)).is_err());
    }

    /// LEB128 varints and zigzag mapping round-trip every value, and the
    /// varint encoding reports its exact consumed length.
    #[test]
    fn varint_and_zigzag_round_trip(v in any::<u64>(), s in any::<i64>()) {
        let mut buf = Vec::new();
        put_varint(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
        prop_assert_eq!(pos, buf.len());
        prop_assert_eq!(unzigzag(zigzag(s)), s);
    }

    /// The compact segment codec (varint/delta + optional RLE) is the
    /// identity for arbitrary frame partitions, compressed or not, and the
    /// debug-JSON form round-trips to the same segment.
    #[test]
    fn segment_round_trips(
        frames in prop::collection::vec(prop::collection::vec(record_strategy(), 0..12), 1..8),
        first_seq in any::<u64>(),
        compress in any::<bool>(),
    ) {
        let segment = Segment { first_seq, frames };
        let bytes = encode_segment(&segment, compress);
        prop_assert_eq!(&decode_segment(&bytes).unwrap(), &segment);

        let (from_json, json_compress) = segment_from_json(&segment_to_json(&segment, compress)).unwrap();
        prop_assert_eq!(&from_json, &segment);
        prop_assert_eq!(json_compress, compress);
        prop_assert_eq!(encode_segment(&from_json, json_compress), bytes);
    }

    /// Flipping any single bit of an encoded segment is always detected
    /// (length prefix or CRC32), and any truncation is rejected cleanly.
    /// Neither ever panics.
    #[test]
    fn segment_rejects_every_bit_flip_and_truncation(
        frames in prop::collection::vec(prop::collection::vec(record_strategy(), 0..8), 1..5),
        first_seq in any::<u64>(),
        compress in any::<bool>(),
        flip in any::<prop::sample::Index>(),
        cut in any::<prop::sample::Index>(),
    ) {
        let segment = Segment { first_seq, frames };
        let bytes = encode_segment(&segment, compress);

        let mut flipped = bytes.clone();
        let pos = flip.index(flipped.len() * 8);
        flipped[pos / 8] ^= 1 << (pos % 8);
        prop_assert!(decode_segment(&flipped).is_err());

        let cut = cut.index(bytes.len());
        prop_assert!(decode_segment(&bytes[..cut]).is_err());
    }
}

/// A fixed, deterministic segment exercising every record variant — the
/// subject of the committed golden fixtures.
fn golden_segment() -> Segment {
    Segment {
        first_seq: 7,
        frames: vec![
            vec![
                Record::Rdtsc { value: 0x1111_2222_3333 },
                Record::Rdtsc { value: 0x1111_2222_4444 },
                Record::PioIn { port: 0x3f8, value: 0x41 },
                Record::MmioRead { addr: 0xfee0_0000, value: 9 },
            ],
            vec![
                Record::Interrupt { irq: 32, at_insn: 120_000 },
                Record::Dma { source: DmaSource::Disk, addr: 0x9000, data: vec![0xaa; 64], at_insn: 120_050 },
                Record::Dma { source: DmaSource::Nic, addr: 0x9400, data: vec![1, 2, 3], at_insn: 120_060 },
                Record::Evict { tid: ThreadId(3), addr: 0x8000_1234 },
            ],
            vec![
                Record::Alarm(AlarmInfo {
                    tid: ThreadId(3),
                    mispredict: Mispredict {
                        ret_pc: 0x8000_2000,
                        predicted: Some(0x8000_2004),
                        actual: 0x9000_0000,
                        kind: MispredictKind::TargetMismatch,
                    },
                    at_insn: 130_000,
                    at_cycle: 260_000,
                }),
                Record::End { at_insn: 140_000, at_cycle: 280_000 },
            ],
        ],
    }
}

/// Golden-file pin on format v1: the committed compact fixture and its
/// debug-JSON form must match what the codec produces today, byte for byte.
/// If this fails, the on-disk format drifted — bump
/// `rnr_log::FORMAT_VERSION` and regenerate the fixtures with
/// `RNR_REGEN_GOLDEN=1 cargo test --test log_properties`.
#[test]
fn golden_segment_fixtures_pin_format_v1() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let bin_path = dir.join("segment_v1.bin");
    let json_path = dir.join("segment_v1.json");
    let segment = golden_segment();
    let bin = encode_segment(&segment, true);
    let json = segment_to_json(&segment, true);
    if std::env::var_os("RNR_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&bin_path, &bin).unwrap();
        std::fs::write(&json_path, &json).unwrap();
    }
    let golden_bin = std::fs::read(&bin_path).expect("committed fixture tests/fixtures/segment_v1.bin");
    let golden_json =
        std::fs::read_to_string(&json_path).expect("committed fixture tests/fixtures/segment_v1.json");
    assert_eq!(bin, golden_bin, "compact segment encoding drifted without a FORMAT_VERSION bump");
    assert_eq!(json, golden_json, "debug-JSON segment form drifted without a FORMAT_VERSION bump");

    // Both committed forms still convert losslessly into each other.
    let decoded = decode_segment(&golden_bin).expect("committed fixture decodes");
    assert_eq!(decoded, segment);
    let (from_json, compress) = segment_from_json(&golden_json).expect("committed fixture parses");
    assert_eq!(from_json, segment);
    assert_eq!(encode_segment(&from_json, compress), golden_bin);
}
