//! Property tests on the input-log codec.

use proptest::prelude::*;
use rnr_log::{decode_frame, encode_frame, AlarmInfo, DmaSource, InputLog, Record};
use rnr_ras::{Mispredict, MispredictKind, ThreadId};

fn record_strategy() -> impl Strategy<Value = Record> {
    prop_oneof![
        any::<u64>().prop_map(|value| Record::Rdtsc { value }),
        (any::<u16>(), any::<u64>()).prop_map(|(port, value)| Record::PioIn { port, value }),
        (any::<u64>(), any::<u64>()).prop_map(|(addr, value)| Record::MmioRead { addr, value }),
        (any::<u8>(), any::<u64>()).prop_map(|(irq, at_insn)| Record::Interrupt { irq, at_insn }),
        (any::<bool>(), any::<u64>(), prop::collection::vec(any::<u8>(), 0..300), any::<u64>()).prop_map(
            |(nic, addr, data, at_insn)| Record::Dma {
                source: if nic { DmaSource::Nic } else { DmaSource::Disk },
                addr,
                data,
                at_insn,
            }
        ),
        (any::<u64>(), any::<u64>()).prop_map(|(tid, addr)| Record::Evict { tid: ThreadId(tid), addr }),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::option::of(any::<u64>()),
            any::<u64>(),
            0u8..3,
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(tid, ret_pc, predicted, actual, kind, at_insn, at_cycle)| {
                Record::Alarm(AlarmInfo {
                    tid: ThreadId(tid),
                    mispredict: Mispredict {
                        ret_pc,
                        predicted,
                        actual,
                        kind: match kind {
                            0 => MispredictKind::Underflow,
                            1 => MispredictKind::TargetMismatch,
                            _ => MispredictKind::WhitelistViolation,
                        },
                    },
                    at_insn,
                    at_cycle,
                })
            }),
        (any::<u64>(), any::<u64>()).prop_map(|(at_insn, at_cycle)| Record::End { at_insn, at_cycle }),
    ]
}

proptest! {
    /// Serialize → deserialize is the identity for arbitrary logs, and the
    /// byte accounting matches the wire exactly.
    #[test]
    fn log_round_trips(records in prop::collection::vec(record_strategy(), 0..60)) {
        let log: InputLog = records.clone().into_iter().collect();
        let bytes = log.to_bytes();
        prop_assert_eq!(bytes.len() as u64, log.total_bytes());
        let back = InputLog::from_bytes(bytes).unwrap();
        prop_assert_eq!(back.records(), &records[..]);
        prop_assert_eq!(back.total_bytes(), log.total_bytes());
        for c in rnr_log::Category::ALL {
            prop_assert_eq!(back.bytes_for(c), log.bytes_for(c));
        }
    }

    /// Every record reports its exact encoded size.
    #[test]
    fn encoded_len_is_exact(record in record_strategy()) {
        let log: InputLog = std::iter::once(record.clone()).collect();
        prop_assert_eq!(log.to_bytes().len() as u64, record.encoded_len());
    }

    /// Cutting the encoding at a record boundary yields the prefix log;
    /// cutting mid-record fails cleanly (no panics, no garbage records).
    #[test]
    fn truncation_is_detected(records in prop::collection::vec(record_strategy(), 1..20), cut in any::<prop::sample::Index>()) {
        let log: InputLog = records.clone().into_iter().collect();
        let bytes = log.to_bytes();
        let mut boundaries = vec![0u64];
        for r in &records {
            boundaries.push(boundaries.last().unwrap() + r.encoded_len());
        }
        let cut = cut.index(bytes.len()) as u64;
        let truncated = bytes.slice(0..cut as usize);
        match InputLog::from_bytes(truncated) {
            Ok(prefix) => {
                let n = boundaries.iter().position(|&b| b == cut).expect("clean decode only at boundaries");
                prop_assert_eq!(prefix.records(), &records[..n]);
            }
            Err(_) => prop_assert!(!boundaries.contains(&cut)),
        }
    }

    /// Flipping any single bit of a valid encoded log is handled cleanly:
    /// the decoder either rejects it with a `CodecError` or — when the flip
    /// lands in a value field — decodes a log whose byte accounting still
    /// matches the wire exactly. It never panics and never mis-frames into
    /// a log of a different encoded length.
    #[test]
    fn bit_flips_never_panic_or_misframe(
        records in prop::collection::vec(record_strategy(), 1..20),
        flip in any::<prop::sample::Index>(),
    ) {
        let log: InputLog = records.into_iter().collect();
        let bytes = log.to_bytes();
        let mut flipped = bytes.to_vec();
        let pos = flip.index(flipped.len() * 8);
        flipped[pos / 8] ^= 1 << (pos % 8);
        let len = flipped.len() as u64;
        if let Ok(decoded) = InputLog::from_bytes(flipped.into()) {
            prop_assert_eq!(decoded.total_bytes(), len);
        }
    }

    /// The framed transport is strictly stronger: a single-bit flip
    /// anywhere in an encoded frame — header or payload — is *always*
    /// rejected (CRC32 detects every 1-bit error), and so is any
    /// truncation. Neither ever panics.
    #[test]
    fn frame_rejects_every_bit_flip_and_truncation(
        records in prop::collection::vec(record_strategy(), 0..20),
        seq in any::<u64>(),
        flip in any::<prop::sample::Index>(),
        cut in any::<prop::sample::Index>(),
    ) {
        let frame = encode_frame(seq, &records);
        prop_assert!(matches!(decode_frame(&frame), Ok((s, ref r)) if s == seq && *r == records));

        let mut flipped = frame.to_vec();
        let pos = flip.index(flipped.len() * 8);
        flipped[pos / 8] ^= 1 << (pos % 8);
        prop_assert!(decode_frame(&flipped.into()).is_err());

        let cut = cut.index(frame.len());
        prop_assert!(decode_frame(&frame.slice(0..cut)).is_err());
    }
}
