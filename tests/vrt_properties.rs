//! VRT detector invariants and end-to-end memory-safety verdicts.
//!
//! Property tests pin the hardware table's noisy-rule geometry (coverage
//! rounding, capacity eviction, ring bounds, determinism) and the
//! zero-false-negative argument of DESIGN.md §15; integration tests drive
//! the heap-overflow and use-after-return attacks through every execution
//! engine — stepped, block, superblock, span-parallel, and the farm — and
//! require byte-identical reports plus at least one conviction everywhere.

use proptest::prelude::*;
use rnr_attacks::{mount_heap_overflow, mount_stack_uar};
use rnr_guest::layout;
use rnr_safe::{Farm, FarmConfig, Pipeline, PipelineConfig, SessionSpec, VerdictSummary};
use rnr_vrt::{coverage, VrtKind, VrtParams, VrtUnit};
use rnr_workloads::{Workload, WorkloadParams};

// ---------------------------------------------------------------------------
// Hardware-table properties
// ---------------------------------------------------------------------------

proptest! {
    /// Coverage is the granule-aligned interior: contained in the region,
    /// aligned at both ends, and any fully-contained aligned granule is
    /// covered.
    #[test]
    fn coverage_is_the_aligned_interior(
        base in 0x16_0000u64..0x1A_0000,
        len in 1u64..4096,
        gshift in 3u32..9,
    ) {
        let g = 1u64 << gshift;
        let (lo, hi) = coverage(base, len, g);
        prop_assert!(lo % g == 0 && hi % g == 0);
        prop_assert!(lo >= base);
        prop_assert!(lo <= hi);
        // A non-empty interval stays inside the region; an empty one
        // (lo == hi) covers nothing, wherever the clamp leaves it.
        if lo < hi {
            prop_assert!(hi <= base + len);
        }
        // Every aligned granule fully inside the region is covered.
        let first_full = base.div_ceil(g) * g;
        if first_full + g <= base + len {
            prop_assert!(lo <= first_full && first_full + g <= hi);
        } else {
            prop_assert_eq!(lo, hi, "region too small for any full granule");
        }
    }

    /// The zero-false-negative geometry: with the victim slot and both
    /// neighbours live, the first byte past any allocation the kernel can
    /// serve is uncovered — the first overflowing store always alarms.
    #[test]
    fn first_overflowing_store_always_alarms(
        slot in 1usize..layout::VRT_HEAP_SLOTS - 1,
        len in 1u64..=layout::VRT_MAX_ALLOC - layout::VRT_GRANULE,
        seq in 0u64..64,
        neighbour_len in 1u64..=layout::VRT_MAX_ALLOC - layout::VRT_GRANULE,
    ) {
        let p = VrtParams::default();
        let jitter = (seq * 8) & (p.granule - 8); // the kernel's base jitter
        let slot_base = layout::KHEAP_BASE + slot as u64 * layout::VRT_HEAP_SLOT_STRIDE;
        let base = slot_base + jitter;
        let mut vrt = VrtUnit::new(p.clone());
        vrt.declare(slot_base - layout::VRT_HEAP_SLOT_STRIDE, neighbour_len);
        vrt.declare(base, len);
        vrt.declare(slot_base + layout::VRT_HEAP_SLOT_STRIDE, neighbour_len);
        let sp = p.stack_hi - 64;
        prop_assert_eq!(
            vrt.on_store(base + len, sp),
            Some(VrtKind::Heap),
            "store one past the region must alarm (base {base:#x}, len {len})"
        );
    }

    /// FIFO capacity eviction is exact: n distinct declarations evict
    /// max(0, n - capacity) entries, and retiring an evicted region is a
    /// counted no-op.
    #[test]
    fn eviction_counts_are_exact(n in 0usize..40) {
        let p = VrtParams::default();
        let mut vrt = VrtUnit::new(p.clone());
        for k in 0..n as u64 {
            vrt.declare(p.heap_lo + k * 0x400, 0x100);
        }
        prop_assert_eq!(vrt.counters().evictions, n.saturating_sub(p.capacity) as u64);
        for k in 0..n as u64 {
            vrt.retire(p.heap_lo + k * 0x400);
        }
        prop_assert_eq!(vrt.counters().retires, n as u64);
        if n > 0 {
            // Everything is gone: an interior store alarms again.
            let sp = p.stack_hi - 64;
            prop_assert_eq!(vrt.on_store(p.heap_lo + 0x40, sp), Some(VrtKind::Heap));
        }
    }

    /// The returned-window ring keeps exactly the `ring` youngest windows:
    /// a store into window i (of k filed) alarms iff i >= k - ring.
    #[test]
    fn ring_keeps_the_youngest_windows(k in 1usize..12, probe_raw in 0usize..12) {
        let probe = probe_raw % k;
        let p = VrtParams::default();
        let mut vrt = VrtUnit::new(p.clone());
        let span = 2 * p.min_frame;
        for i in 0..k as u64 {
            let entry = p.stack_hi - 64 - i * span;
            vrt.on_call(entry);
            vrt.note_sp(entry - span);
            vrt.on_ret();
        }
        prop_assert_eq!(vrt.counters().windows, k as u64);
        let entry = p.stack_hi - 64 - probe as u64 * span;
        let hit = vrt.on_store(entry - 8, p.stack_lo + 64);
        if probe >= k - p.ring.min(k) {
            prop_assert_eq!(hit, Some(VrtKind::Stack));
        } else {
            prop_assert_eq!(hit, None, "window {probe} of {k} should have been evicted");
        }
    }

    /// The unit is a deterministic function of its input sequence: two
    /// fresh units fed the same operations agree on every alarm and on
    /// every diagnostic counter.
    #[test]
    fn unit_is_deterministic(ops in proptest::collection::vec(
        prop_oneof![
            (0u64..0x4000, 1u64..2048).prop_map(|(off, len)| (0u8, off, len)),
            (0u64..0x4000,).prop_map(|(off,)| (1u8, off, 0)),
            (0u64..0x4000, 0u64..0x4000).prop_map(|(a, b)| (2u8, a, b)),
            (0u64..0x4000,).prop_map(|(sp,)| (3u8, sp, 0)),
            Just((4u8, 0, 0)),
        ],
        0..64,
    )) {
        let p = VrtParams::default();
        let mut a = VrtUnit::new(p.clone());
        let mut b = VrtUnit::new(p.clone());
        for (kind, x, y) in ops {
            match kind {
                0 => {
                    a.declare(p.heap_lo + x, y);
                    b.declare(p.heap_lo + x, y);
                }
                1 => {
                    a.retire(p.heap_lo + x);
                    b.retire(p.heap_lo + x);
                }
                2 => {
                    let (addr, sp) = (p.heap_lo + x, p.stack_lo + y);
                    prop_assert_eq!(a.on_store(addr, sp), b.on_store(addr, sp));
                }
                3 => {
                    a.on_call(p.stack_lo + x);
                    b.on_call(p.stack_lo + x);
                }
                _ => {
                    a.on_ret();
                    b.on_ret();
                }
            }
        }
        prop_assert_eq!(a.counters(), b.counters());
    }
}

// ---------------------------------------------------------------------------
// End-to-end verdicts
// ---------------------------------------------------------------------------

fn vrt_cfg(duration: u64) -> PipelineConfig {
    PipelineConfig {
        duration_insns: duration,
        checkpoint_interval_secs: Some(0.125),
        vrt: Some(VrtParams::default()),
        ..PipelineConfig::default()
    }
}

fn count_class(report: &rnr_safe::PipelineReport, want: &str) -> usize {
    report
        .resolutions
        .iter()
        .filter(|r| matches!(&r.summary, VerdictSummary::MemoryViolation { class, .. } if class == want))
        .count()
}

fn fp_classes(report: &rnr_safe::PipelineReport) -> Vec<String> {
    report
        .resolutions
        .iter()
        .filter_map(|r| match &r.summary {
            VerdictSummary::FalsePositive { class } => Some(class.clone()),
            _ => None,
        })
        .collect()
}

/// The heap overflow is convicted — zero false negatives — in every
/// execution engine, and the report is byte-identical across all of them:
/// stepped, block, superblock, span-parallel, and fully sequential.
#[test]
fn heap_attack_zero_fn_across_engine_matrix() {
    let run = |cfg: PipelineConfig| {
        let (spec, _plan) = mount_heap_overflow(&WorkloadParams::default(), 40);
        Pipeline::new(spec, cfg).run().unwrap()
    };
    let base = run(vrt_cfg(600_000));
    assert!(base.replay.verified);
    assert!(count_class(&base, "heap-overflow") >= 1, "zero-FN: the overflow must be convicted");
    assert!(base.detection.is_some(), "a convicted attack yields a detection window");
    // The conviction names the victim allocation exactly.
    let victim = base
        .resolutions
        .iter()
        .find_map(|r| match &r.summary {
            VerdictSummary::MemoryViolation { class, region, .. } if class == "heap-overflow" => *region,
            _ => None,
        })
        .expect("conviction carries the nearest region");
    assert_eq!(victim.1, 256, "victim allocation length");
    // The benign churn alongside keeps all three FP classes flowing — and
    // every one of them is dismissed, never convicted.
    let fps = fp_classes(&base);
    for class in ["coarse-bounds", "evicted-region", "stale-frame"] {
        assert!(fps.iter().any(|c| c == class), "expected a dismissed {class} false positive");
    }

    let stepped = run(PipelineConfig { block_engine: false, ..vrt_cfg(600_000) });
    assert_eq!(base.to_json(), stepped.to_json(), "stepped engine diverged");
    let no_traces = run(PipelineConfig { superblocks: false, ..vrt_cfg(600_000) });
    assert_eq!(base.to_json(), no_traces.to_json(), "superblocks-off diverged");
    for workers in [2, 4] {
        let spans = run(PipelineConfig { parallel_spans: workers, ..vrt_cfg(600_000) });
        assert_eq!(base.to_json(), spans.to_json(), "span-parallel ({workers}) diverged");
    }
    let sequential =
        run(PipelineConfig { streaming: false, parallel_alarm_replay: false, ..vrt_cfg(600_000) });
    assert_eq!(base.to_json(), sequential.to_json(), "sequential feed diverged");
}

/// The farm lane: the overflow session convicts inside a shared-pool fleet
/// exactly as it does serially, and the benign churn session beside it
/// stays clean — both byte-identical to their serial references.
#[test]
fn heap_attack_zero_fn_in_the_farm() {
    let (attack_spec, _plan) = mount_heap_overflow(&WorkloadParams::default(), 40);
    let sessions = vec![
        SessionSpec::new("overflow", attack_spec, vrt_cfg(600_000)),
        SessionSpec::new("churn", Workload::HeapServer.spec(false), vrt_cfg(300_000)),
    ];
    let serial: Vec<_> =
        sessions.iter().map(|s| Pipeline::new(s.vm.clone(), s.config.clone()).run().unwrap()).collect();
    assert!(count_class(&serial[0], "heap-overflow") >= 1);
    assert_eq!(serial[1].attacks_confirmed(), 0);

    let farm = Farm::new(FarmConfig { workers: 2, ..FarmConfig::default() });
    let report = farm.run(&sessions);
    assert!(report.all_ok());
    for (outcome, expected) in report.sessions.iter().zip(&serial) {
        assert_eq!(
            outcome.result.as_ref().unwrap().to_json(),
            expected.to_json(),
            "session {}: farm report diverged from serial",
            outcome.name
        );
    }
}

/// The use-after-return is convicted through the leaked frame pointer, with
/// the same report serial and span-parallel.
#[test]
fn uar_attack_convicted_and_equivalent() {
    let run = |cfg: PipelineConfig| {
        let (spec, _plan) = mount_stack_uar(&WorkloadParams::default(), 4);
        Pipeline::new(spec, cfg).run().unwrap()
    };
    let base = run(vrt_cfg(400_000));
    assert!(base.replay.verified);
    assert!(count_class(&base, "use-after-return") >= 1, "the UAR must be convicted");
    let spans = run(PipelineConfig { parallel_spans: 2, ..vrt_cfg(400_000) });
    assert_eq!(base.to_json(), spans.to_json(), "span-parallel UAR report diverged");
}

/// The benign adversarial workloads raise plenty of VRT alarms and the
/// alarm replayer dismisses every one: heap-server trips all three
/// false-positive classes, the longjmp storm mixes stale frames with the
/// RAS's imperfect-nesting mismatches, and nothing is ever convicted.
#[test]
fn benign_vrt_workloads_fully_dismissed() {
    let churn = Pipeline::new(Workload::HeapServer.spec(false), vrt_cfg(400_000)).run().unwrap();
    assert!(churn.replay.verified);
    assert!(churn.replay.alarms_escalated > 0, "the churn must raise VRT alarms");
    assert_eq!(churn.attacks_confirmed(), 0, "benign churn convicted: {:?}", churn.resolutions);
    let fps = fp_classes(&churn);
    for class in ["coarse-bounds", "evicted-region", "stale-frame"] {
        assert!(fps.iter().any(|c| c == class), "heap-server never tripped {class}");
    }

    let storm = Pipeline::new(Workload::Longjmp.spec(false), vrt_cfg(400_000)).run().unwrap();
    assert!(storm.replay.verified);
    assert!(storm.replay.alarms_escalated > 0, "the storm must raise alarms");
    assert_eq!(storm.attacks_confirmed(), 0, "benign storm convicted: {:?}", storm.resolutions);
    let fps = fp_classes(&storm);
    assert!(fps.iter().any(|c| c == "stale-frame"), "longjmp storm never tripped stale-frame");
}

/// The interrupt-flood variant (10x timer rate) changes nothing about
/// correctness: the run verifies, stays conviction-free, and is
/// byte-identical between the stepped and block engines.
#[test]
fn interrupt_flood_variant_stays_equivalent() {
    let params = WorkloadParams::interrupt_flood();
    let run = |block_engine: bool| {
        let cfg = PipelineConfig { block_engine, ..vrt_cfg(300_000) };
        Pipeline::new(Workload::HeapServer.spec_with(false, &params), cfg).run().unwrap()
    };
    let blocked = run(true);
    let stepped = run(false);
    assert!(blocked.replay.verified);
    assert_eq!(blocked.attacks_confirmed(), 0);
    assert_eq!(blocked.to_json(), stepped.to_json(), "interrupt flood broke engine equivalence");
}

/// Without the VRT armed, none of the memory-safety alarm classes can
/// appear: the same churn workload records only RAS noise.
#[test]
fn unarmed_runs_carry_no_vrt_alarms() {
    let cfg = PipelineConfig {
        duration_insns: 300_000,
        checkpoint_interval_secs: Some(0.125),
        ..PipelineConfig::default()
    };
    let report = Pipeline::new(Workload::HeapServer.spec(false), cfg).run().unwrap();
    assert!(report.replay.verified);
    let fps = fp_classes(&report);
    for class in ["coarse-bounds", "evicted-region", "stale-frame"] {
        assert!(!fps.iter().any(|c| c == class), "unarmed run produced a VRT {class} alarm");
    }
    assert_eq!(count_class(&report, "heap-overflow") + count_class(&report, "use-after-return"), 0);
}
