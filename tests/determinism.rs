//! Cross-crate determinism properties: the foundation RnR-Safe stands on.

use std::sync::Arc;

use proptest::prelude::*;
use rnr_hypervisor::{RecordConfig, RecordMode, Recorder};
use rnr_replay::{ReplayConfig, Replayer};
use rnr_workloads::Workload;

fn workload_strategy() -> impl Strategy<Value = Workload> {
    prop::sample::select(Workload::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Any workload, any seed: replay reproduces the recorded final state
    /// bit-exactly, including guest outputs.
    #[test]
    fn replay_is_bit_exact(w in workload_strategy(), seed in 0u64..1000) {
        let spec = w.spec(false);
        let rec = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, seed, 120_000))
            .unwrap()
            .run();
        prop_assert!(rec.fault.is_none());
        let mut r = Replayer::new(&spec, Arc::clone(&rec.log), ReplayConfig::default());
        r.verify_against(rec.final_digest);
        let out = r.run().unwrap();
        prop_assert_eq!(out.verified, Some(true));
        prop_assert_eq!(out.retired, rec.retired);
        prop_assert_eq!(out.console, rec.console);
    }

    /// Recording twice with the same seed is identical; different seeds
    /// diverge (the log really carries the non-determinism).
    #[test]
    fn recording_is_seed_deterministic(w in workload_strategy(), seed in 0u64..1000) {
        let spec = w.spec(false);
        let run = |s| Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, s, 60_000)).unwrap().run();
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(a.final_digest, b.final_digest);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.log.total_bytes(), b.log.total_bytes());
    }
}

/// The checkpoint interval must not perturb the replayed execution, only
/// its cost: all intervals converge to the same final state.
#[test]
fn checkpoint_interval_does_not_change_replayed_state() {
    let spec = Workload::Fileio.spec(false);
    let rec = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, 7, 200_000)).unwrap().run();
    let log = Arc::clone(&rec.log);
    let mut digests = Vec::new();
    for interval in [None, Some(100_000), Some(400_000), Some(2_000_000)] {
        let cfg = ReplayConfig { checkpoint_interval: interval, ..ReplayConfig::default() };
        let out = Replayer::new(&spec, Arc::clone(&log), cfg).run().unwrap();
        digests.push(out.final_digest);
    }
    assert!(digests.windows(2).all(|w| w[0] == w[1]), "{digests:?}");
    assert_eq!(digests[0], rec.final_digest);
}

/// Alarm replay from a mid-run checkpoint converges to the same final
/// state as replaying from the beginning.
#[test]
fn replay_from_checkpoint_converges() {
    use rnr_attacks::mount_kernel_rop;
    use rnr_workloads::WorkloadParams;
    let (spec, _plan) = mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).unwrap();
    let rec = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, 42, 700_000)).unwrap().run();
    let log = Arc::clone(&rec.log);
    let cfg = ReplayConfig { checkpoint_interval: Some(400_000), ..ReplayConfig::default() };
    let cr = Replayer::new(&spec, Arc::clone(&log), cfg.clone()).run().unwrap();
    assert_eq!(cr.final_digest, rec.final_digest);
    let case = cr.alarm_cases.first().expect("attack escalates an alarm");
    assert!(case.checkpoint.at_insn > 0, "mid-run checkpoint expected");
    // Resume from the checkpoint and run to the end of the log.
    let resume_cfg = ReplayConfig { checkpoint_interval: None, collect_cases: false, ..cfg };
    let resumed = Replayer::from_checkpoint(&spec, log, resume_cfg, &case.checkpoint, false).run().unwrap();
    assert_eq!(resumed.final_digest, rec.final_digest);
    assert_eq!(resumed.retired, rec.retired);
}
