//! The full pipeline across every workload: benign executions stay clean.

use rnr_safe::{Pipeline, PipelineConfig};
use rnr_workloads::Workload;

#[test]
fn all_workloads_survive_the_full_pipeline() {
    for w in Workload::ALL {
        let cfg = PipelineConfig {
            duration_insns: 200_000,
            checkpoint_interval_secs: Some(0.25),
            ..PipelineConfig::default()
        };
        let report = Pipeline::new(w.spec(false), cfg).run().unwrap_or_else(|e| panic!("{}: {e}", w.label()));
        assert!(report.replay.verified, "{}", w.label());
        assert_eq!(report.attacks_confirmed(), 0, "{}: false conviction", w.label());
        assert_eq!(report.record.priv_flag, 0, "{}", w.label());
        // Every escalated alarm must have been resolved benign.
        assert_eq!(report.false_positives_resolved(), report.resolutions.len(), "{}", w.label());
    }
}

#[test]
fn small_ras_increases_alarm_traffic_but_never_convicts_benign_runs() {
    // Shrinking the RAS multiplies underflows (hardware imprecision), yet
    // the replay side still clears everything — the RnR-Safe robustness
    // claim (§3.2) under an intentionally bad detector.
    let big = PipelineConfig { duration_insns: 250_000, ras_capacity: 48, ..PipelineConfig::default() };
    let small = PipelineConfig { duration_insns: 250_000, ras_capacity: 8, ..PipelineConfig::default() };
    let w = Workload::Make;
    let r_big = Pipeline::new(w.spec(false), big).run().unwrap();
    let r_small = Pipeline::new(w.spec(false), small).run().unwrap();
    assert!(
        r_small.record.alarms >= r_big.record.alarms,
        "smaller RAS must not reduce alarms: {} vs {}",
        r_small.record.alarms,
        r_big.record.alarms
    );
    assert_eq!(r_small.attacks_confirmed(), 0);
    assert_eq!(r_big.attacks_confirmed(), 0);
    assert!(r_small.replay.verified && r_big.replay.verified);
}

#[test]
fn block_engine_is_invisible_across_all_workloads() {
    // Every workload mixes interrupts, syscalls, I/O, and call/return
    // traffic differently; the block engine must be a pure wall-clock knob
    // on all of them.
    for w in Workload::ALL {
        let run = |block_engine: bool| {
            let cfg = PipelineConfig { duration_insns: 120_000, block_engine, ..PipelineConfig::default() };
            Pipeline::new(w.spec(false), cfg).run().unwrap_or_else(|e| panic!("{}: {e}", w.label()))
        };
        let blocked = run(true);
        let stepped = run(false);
        assert_eq!(blocked.to_json(), stepped.to_json(), "{}: block engine visible", w.label());
        assert_eq!(blocked.record.cycles, stepped.record.cycles, "{}", w.label());
    }
}

#[test]
fn report_json_is_well_formed() {
    let report = Pipeline::new(
        Workload::Radiosity.spec(false),
        PipelineConfig { duration_insns: 120_000, ..PipelineConfig::default() },
    )
    .run()
    .unwrap();
    let json = report.to_json();
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(value["record"]["workload"], "radiosity");
    assert!(value["replay"]["verified"].as_bool().unwrap());
}
