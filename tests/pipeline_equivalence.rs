//! Equivalence of the pipeline's host-side execution strategies: streaming
//! vs sequential record+replay, AR pool sizes, and the decode cache are all
//! wall-clock knobs — every one of them must leave the recorded log, the
//! virtual-cycle figures, and the verdicts bit-identical.

use std::sync::Arc;

use rnr_attacks::mount_kernel_rop;
use rnr_hypervisor::{RecordConfig, RecordMode, Recorder};
use rnr_log::log_channel;
use rnr_safe::{Pipeline, PipelineConfig};
use rnr_workloads::{Workload, WorkloadParams};

/// A recorder with a live sink publishes exactly the log it keeps: the
/// streamed copy is byte-identical to the recording's own.
#[test]
fn streamed_log_is_byte_identical() {
    let spec = Workload::Mysql.spec(false);
    let plain = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, 42, 120_000)).unwrap().run();

    let mut recorder = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, 42, 120_000)).unwrap();
    let (sink, stream) = log_channel(8);
    recorder.stream_to(sink);
    let consumer = std::thread::spawn(move || stream.into_log());
    let streamed = recorder.run();
    let side_channel = consumer.join().unwrap();

    assert_eq!(plain.log.to_bytes(), streamed.log.to_bytes());
    assert_eq!(side_channel.to_bytes(), streamed.log.to_bytes());
    assert_eq!(plain.final_digest, streamed.final_digest);
}

/// Streaming and sequential pipelines produce byte-identical reports on a
/// benign run.
#[test]
fn benign_pipeline_streaming_matches_sequential() {
    let run = |streaming: bool| {
        let spec = Workload::Mysql.spec(false);
        let cfg = PipelineConfig { duration_insns: 250_000, streaming, ..PipelineConfig::default() };
        Pipeline::new(spec, cfg).run().unwrap()
    };
    let streamed = run(true);
    let sequential = run(false);
    assert_eq!(streamed.to_json(), sequential.to_json());
    assert_eq!(streamed.record.cycles, sequential.record.cycles);
    assert_eq!(streamed.replay.cycles, sequential.replay.cycles);
}

/// On the mounted kernel-ROP attack, every host-side strategy — sequential
/// phases, a bigger AR pool, no decode cache — reproduces the default
/// (streaming) report exactly, verdicts and detection window included.
#[test]
fn attack_pipeline_equivalent_across_configs() {
    let base_cfg = PipelineConfig {
        duration_insns: 900_000,
        checkpoint_interval_secs: Some(0.125),
        ..PipelineConfig::default()
    };
    let run = |cfg: PipelineConfig| {
        let (spec, _plan) = mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).unwrap();
        Pipeline::new(spec, cfg).run().unwrap()
    };
    let base = run(base_cfg.clone());
    assert!(base.attacks_confirmed() >= 1);
    assert!(base.detection.is_some());

    let sequential =
        run(PipelineConfig { streaming: false, parallel_alarm_replay: false, ..base_cfg.clone() });
    assert_eq!(base.to_json(), sequential.to_json(), "sequential record+replay diverged");

    let pooled = run(PipelineConfig { ar_workers: 4, ..base_cfg.clone() });
    assert_eq!(base.to_json(), pooled.to_json(), "AR pool size changed the report");

    let no_cache = run(PipelineConfig { decode_cache: false, ..base_cfg.clone() });
    assert_eq!(base.to_json(), no_cache.to_json(), "decode cache changed the report");

    let stepped = run(PipelineConfig { block_engine: false, ..base_cfg.clone() });
    assert_eq!(base.to_json(), stepped.to_json(), "block engine changed the report");

    let no_traces = run(PipelineConfig { superblocks: false, ..base_cfg.clone() });
    assert_eq!(base.to_json(), no_traces.to_json(), "superblock traces changed the report");

    let bare = run(PipelineConfig {
        streaming: false,
        parallel_alarm_replay: false,
        decode_cache: false,
        block_engine: false,
        ..base_cfg
    });
    assert_eq!(base.to_json(), bare.to_json(), "all wall-clock knobs off diverged");
}

/// The decode cache changes nothing a benign pipeline can observe: digest
/// verification passes and the report (cycles, alarm resolutions) is
/// bit-identical with the cache off.
#[test]
fn benign_pipeline_decode_cache_equivalent() {
    let run = |decode_cache: bool| {
        let spec = Workload::Radiosity.spec(false);
        let cfg = PipelineConfig { duration_insns: 200_000, decode_cache, ..PipelineConfig::default() };
        Pipeline::new(spec, cfg).run().unwrap()
    };
    let cached = run(true);
    let plain = run(false);
    assert!(cached.replay.verified);
    assert_eq!(cached.to_json(), plain.to_json());
}

/// The block engine changes nothing a benign pipeline can observe: the full
/// record → verify → alarm-replay report is bit-identical with block
/// execution off, and the optimized run actually exercised the block cache.
#[test]
fn benign_pipeline_block_engine_equivalent() {
    let run = |block_engine: bool| {
        let spec = Workload::Make.spec(false);
        let cfg = PipelineConfig { duration_insns: 200_000, block_engine, ..PipelineConfig::default() };
        Pipeline::new(spec, cfg).run().unwrap()
    };
    let blocked = run(true);
    let stepped = run(false);
    assert!(blocked.replay.verified);
    assert_eq!(blocked.to_json(), stepped.to_json());
    assert_eq!(blocked.record.cycles, stepped.record.cycles);
    assert!(blocked.block_stats.hits > 0, "block cache never hit");
    assert_eq!(stepped.block_stats.hits, 0, "block stats leaked from a stepped run");
}

/// The superblock trace engine changes nothing a benign pipeline can
/// observe, even on the adversarial self-modifying JIT workload: the report
/// is bit-identical with traces off, and the optimized run actually formed
/// and dispatched traces despite the code churn.
#[test]
fn benign_pipeline_superblocks_equivalent_on_jit() {
    let run = |superblocks: bool| {
        let spec = Workload::Jit.spec(false);
        let cfg = PipelineConfig { duration_insns: 250_000, superblocks, ..PipelineConfig::default() };
        Pipeline::new(spec, cfg).run().unwrap()
    };
    let traced = run(true);
    let plain = run(false);
    assert!(traced.replay.verified);
    assert_eq!(traced.to_json(), plain.to_json());
    assert_eq!(traced.record.cycles, plain.record.cycles);
    assert!(traced.block_stats.trace_hits > 0, "trace cache never dispatched on the JIT workload");
    assert_eq!(plain.block_stats.trace_hits, 0, "trace stats leaked from a blocks-only run");
}

/// The block engine is bit-exact against the single-step interpreter on its
/// hardest edges, combined in one guest program: self-modifying code that
/// overwrites an instruction inside the currently cached block, a breakpoint
/// planted mid-block (re-armed with a skip every pass), an interrupt window
/// opening mid-stream, and retired budgets that chop blocks at odd offsets.
#[test]
fn block_engine_edge_cases_match_single_step() {
    use rnr_isa::{Assembler, Instruction, Opcode, Reg};
    use rnr_machine::{Exit, GuestVm, MachineConfig, RunBudget};

    let program = || {
        let mut asm = Assembler::new(0x1000);
        let patch = Instruction::new(Opcode::Addi, Reg::R2, Reg::R2, Reg::R0, 7);
        asm.movi(Reg::R1, 0);
        asm.movi(Reg::R6, 9); // loop iterations
        asm.lea(Reg::R5, "patch");
        asm.movi64(Reg::R4, u64::from_le_bytes(patch.encode()));
        asm.label("loop");
        asm.addi(Reg::R1, Reg::R1, 1);
        asm.addi(Reg::R2, Reg::R2, 3);
        asm.xor(Reg::R3, Reg::R1, Reg::R2);
        asm.st(Reg::R5, 0, Reg::R4); // SMC: "patch" sits later in this very block
        asm.label("patch");
        asm.nop(); // becomes `addi r2, r2, 7` after the first pass
        asm.sti();
        asm.cli();
        asm.bne(Reg::R1, Reg::R6, "loop");
        asm.hlt();
        asm.assemble().unwrap()
    };

    let vm_at = |block_engine: bool, entry_skew: u64| {
        let cfg = MachineConfig { block_engine, ..MachineConfig::default() };
        let mut vm = GuestVm::new(cfg, &[]);
        let img = program();
        vm.mem_mut().write_bytes(img.base(), img.bytes()).unwrap();
        vm.set_entry(img.base() + entry_skew);
        vm.cpu_mut().set_sp(0x8000);
        (vm, img)
    };

    let trace = |block_engine: bool| {
        let (mut vm, img) = vm_at(block_engine, 0);
        vm.add_breakpoint(img.require_symbol("loop") + 16); // the `xor`, mid-block
        vm.request_interrupt_window();
        let mut events = Vec::new();
        let mut until = 5;
        for _ in 0..600 {
            let exit = vm.run(RunBudget::until(until));
            events.push((exit.clone(), vm.retired(), vm.cycles()));
            match exit {
                Exit::Halt => break,
                Exit::Breakpoint { .. } => vm.skip_breakpoint_once(),
                Exit::BudgetExhausted => until = vm.retired() + 5,
                _ => {}
            }
        }
        (events, vm.digest(), vm.cpu().reg(Reg::R2))
    };
    let blocked = trace(true);
    let stepped = trace(false);
    assert_eq!(blocked, stepped);
    assert!(matches!(blocked.0.last(), Some((Exit::Halt, ..))));

    // Hijacked-return style entry: an unaligned PC decodes a skewed byte
    // stream; the block engine must defer to single-stepping and stay exact.
    let skewed = |block_engine: bool| {
        let (mut vm, _img) = vm_at(block_engine, 4);
        let mut events = Vec::new();
        for _ in 0..40 {
            let exit = vm.run(RunBudget::until(vm.retired() + 7));
            events.push((exit.clone(), vm.retired(), vm.cycles()));
            if !matches!(exit, Exit::BudgetExhausted) {
                break;
            }
        }
        (events, vm.digest())
    };
    assert_eq!(skewed(true), skewed(false));
}

/// Checkpoint-partitioned span replay is a pure wall-clock knob: for every
/// worker count, workload, and block-engine setting, the parallel pipeline
/// report is byte-identical to the serial one of the same configuration.
/// The matrix runs the full adversarial set — including the VRT-stressing
/// `HeapServer` and `Longjmp` workloads — with the VRT detector armed, so
/// memory-safety alarm cases ride the span-partitioned escalation path too.
#[test]
fn parallel_span_replay_matches_serial_across_matrix() {
    for workload in Workload::ADVERSARIAL {
        for block_engine in [true, false] {
            let run = |parallel_spans: usize| {
                let cfg = PipelineConfig {
                    duration_insns: 250_000,
                    block_engine,
                    parallel_spans,
                    vrt: Some(rnr_vrt::VrtParams::default()),
                    ..PipelineConfig::default()
                };
                Pipeline::new(workload.spec(false), cfg).run().unwrap()
            };
            let serial = run(0);
            assert!(serial.replay.verified);
            assert_eq!(serial.attacks_confirmed(), 0, "{workload:?}: benign run convicted");
            for workers in [1, 2, 4, 8] {
                let parallel = run(workers);
                assert_eq!(
                    parallel.to_json(),
                    serial.to_json(),
                    "{workload:?} block_engine={block_engine} workers={workers}: report diverged"
                );
            }
        }
    }
}

/// On the mounted attack, span-parallel verification reproduces the serial
/// report exactly — verdicts, detection window, and alarm resolutions
/// included — in both streaming and sequential feed modes.
#[test]
fn attack_pipeline_parallel_spans_match_serial() {
    let base_cfg = PipelineConfig {
        duration_insns: 900_000,
        checkpoint_interval_secs: Some(0.125),
        ..PipelineConfig::default()
    };
    let run = |cfg: PipelineConfig| {
        let (spec, _plan) = mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).unwrap();
        Pipeline::new(spec, cfg).run().unwrap()
    };
    let serial = run(base_cfg.clone());
    assert!(serial.attacks_confirmed() >= 1);
    for workers in [2, 4] {
        let streamed = run(PipelineConfig { parallel_spans: workers, ..base_cfg.clone() });
        assert_eq!(serial.to_json(), streamed.to_json(), "streaming feed, {workers} workers");
        let sequential =
            run(PipelineConfig { parallel_spans: workers, streaming: false, ..base_cfg.clone() });
        assert_eq!(serial.to_json(), sequential.to_json(), "complete feed, {workers} workers");
    }
}

/// The `durable_log` knob is report-invisible across its interaction
/// corners: persistence on vs off, crossed with span-parallel replay and
/// the superblock trace engine, always yields a byte-identical report.
#[test]
fn durable_log_equivalent_across_parallel_and_superblock_corners() {
    let scratch = std::env::temp_dir().join(format!("rnr-eq-corners-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let run = |durable: Option<&str>, parallel_spans: usize, superblocks: bool| {
        let cfg = PipelineConfig {
            duration_insns: 250_000,
            parallel_spans,
            superblocks,
            durable_log: durable.map(|tag| rnr_log::DurableLogConfig::new(scratch.join(tag))),
            ..PipelineConfig::default()
        };
        Pipeline::new(Workload::Jit.spec(false), cfg).run().unwrap()
    };
    let reference = run(None, 0, true);
    assert!(reference.replay.verified);
    for parallel_spans in [0, 2] {
        for superblocks in [true, false] {
            let tag = format!("p{parallel_spans}-s{superblocks}");
            let durable = run(Some(&tag), parallel_spans, superblocks);
            let plain = run(None, parallel_spans, superblocks);
            assert_eq!(
                plain.to_json(),
                reference.to_json(),
                "spans={parallel_spans} superblocks={superblocks}: baseline diverged"
            );
            assert_eq!(
                durable.to_json(),
                reference.to_json(),
                "spans={parallel_spans} superblocks={superblocks}: durable_log changed the report"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

/// Streaming and sequential pipelines persist **byte-identical** segment
/// stores: the sink-side and recorder-side writers frame records the same
/// way, so the durable form is independent of how the run was driven.
#[test]
fn durable_store_is_byte_identical_across_streaming_and_sequential() {
    let scratch = std::env::temp_dir().join(format!("rnr-eq-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let run = |streaming: bool, dir: std::path::PathBuf| {
        let cfg = PipelineConfig {
            duration_insns: 250_000,
            streaming,
            durable_log: Some(rnr_log::DurableLogConfig::new(dir)),
            ..PipelineConfig::default()
        };
        Pipeline::new(Workload::Mysql.spec(false), cfg).run().unwrap()
    };
    let streamed = run(true, scratch.join("streaming"));
    let sequential = run(false, scratch.join("sequential"));
    assert_eq!(streamed.to_json(), sequential.to_json());

    let mut names: Vec<String> = std::fs::read_dir(scratch.join("streaming"))
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    names.sort();
    assert!(!names.is_empty(), "the streaming run must have sealed segments");
    let mut other: Vec<String> = std::fs::read_dir(scratch.join("sequential"))
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    other.sort();
    assert_eq!(names, other, "same segment files either way");
    for name in &names {
        assert_eq!(
            std::fs::read(scratch.join("streaming").join(name)).unwrap(),
            std::fs::read(scratch.join("sequential").join(name)).unwrap(),
            "{name}: segment bytes differ between streaming and sequential persistence"
        );
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

/// A farm of N sessions is N serial pipelines: for every corner of
/// (superblocks × farm-owned durable store × pool size), each session's
/// report out of the shared-pool fleet is byte-identical to its own serial
/// [`Pipeline`] run.
#[test]
fn replay_farm_matches_serial_across_corner_matrix() {
    use rnr_safe::{Farm, FarmConfig, SessionSpec};
    let scratch = std::env::temp_dir().join(format!("rnr-farm-eq-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    for superblocks in [true, false] {
        let cfg = PipelineConfig { duration_insns: 200_000, superblocks, ..PipelineConfig::default() };
        let sessions = || {
            vec![
                SessionSpec::new("jit", Workload::Jit.spec(false), cfg.clone()),
                SessionSpec::new("mysql", Workload::Mysql.spec(false), cfg.clone()),
            ]
        };
        let serial: Vec<String> = sessions()
            .iter()
            .map(|s| Pipeline::new(s.vm.clone(), s.config.clone()).run().unwrap().to_json())
            .collect();
        for durable in [false, true] {
            for workers in [1, 3] {
                // A fresh store root per corner: the farm lays down
                // `session-<id>` segment stores only where one is given.
                let durable_root = durable.then(|| scratch.join(format!("s{superblocks}-w{workers}")));
                let farm = Farm::new(FarmConfig { workers, durable_root });
                let report = farm.run(&sessions());
                for (outcome, expected) in report.sessions.iter().zip(&serial) {
                    let got = outcome
                        .result
                        .as_ref()
                        .unwrap_or_else(|e| {
                            panic!(
                                "superblocks={superblocks} durable={durable} workers={workers} \
                                 session {}: farm failed: {e}",
                                outcome.name
                            )
                        })
                        .to_json();
                    assert_eq!(
                        got, *expected,
                        "superblocks={superblocks} durable={durable} workers={workers} \
                         session {}: farm report diverged from serial",
                        outcome.name
                    );
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

/// Adversarial interleaving: an alarm-storming attack session floods the
/// shared pool with AR cases while a self-modifying JIT and a quiet build
/// run beside it. The weighted round-robin scheduler keeps the siblings'
/// work flowing, and every report — the attack's verdicts and detection
/// window included — is byte-identical to its serial reference.
#[test]
fn replay_farm_alarm_storm_does_not_disturb_siblings() {
    use rnr_safe::{Farm, FarmConfig, SessionSpec};
    let (attack_spec, _plan) = mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).unwrap();
    let attack_cfg = PipelineConfig {
        duration_insns: 900_000,
        checkpoint_interval_secs: Some(0.125),
        ..PipelineConfig::default()
    };
    let quiet_cfg = PipelineConfig { duration_insns: 250_000, ..PipelineConfig::default() };
    let sessions = vec![
        SessionSpec::new("attack", attack_spec, attack_cfg),
        SessionSpec::new("jit", Workload::Jit.spec(false), quiet_cfg.clone()),
        SessionSpec::new("make", Workload::Make.spec(false), quiet_cfg),
    ];
    let serial: Vec<_> =
        sessions.iter().map(|s| Pipeline::new(s.vm.clone(), s.config.clone()).run().unwrap()).collect();
    assert!(serial[0].attacks_confirmed() >= 1, "the reference attack must be confirmed");

    let farm = Farm::new(FarmConfig { workers: 2, ..FarmConfig::default() });
    let report = farm.run(&sessions);
    assert!(report.all_ok(), "every fleet session must complete");
    for (outcome, expected) in report.sessions.iter().zip(&serial) {
        let got = outcome.result.as_ref().unwrap();
        assert_eq!(
            got.to_json(),
            expected.to_json(),
            "session {}: farm report diverged under the alarm storm",
            outcome.name
        );
    }
}

/// `Arc`-shared logs replay without copies: two replayers can hold the same
/// recording concurrently.
#[test]
fn shared_log_supports_concurrent_replayers() {
    let spec = Workload::Fileio.spec(false);
    let rec = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, 7, 100_000)).unwrap().run();
    let digest = rec.final_digest;
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let log = Arc::clone(&rec.log);
            let spec = &spec;
            scope.spawn(move || {
                let mut r = rnr_replay::Replayer::new(spec, log, rnr_replay::ReplayConfig::default());
                r.verify_against(digest);
                assert_eq!(r.run().unwrap().verified, Some(true));
            });
        }
    });
}
