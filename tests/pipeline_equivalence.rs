//! Equivalence of the pipeline's host-side execution strategies: streaming
//! vs sequential record+replay, AR pool sizes, and the decode cache are all
//! wall-clock knobs — every one of them must leave the recorded log, the
//! virtual-cycle figures, and the verdicts bit-identical.

use std::sync::Arc;

use rnr_attacks::mount_kernel_rop;
use rnr_hypervisor::{RecordConfig, RecordMode, Recorder};
use rnr_log::log_channel;
use rnr_safe::{Pipeline, PipelineConfig};
use rnr_workloads::{Workload, WorkloadParams};

/// A recorder with a live sink publishes exactly the log it keeps: the
/// streamed copy is byte-identical to the recording's own.
#[test]
fn streamed_log_is_byte_identical() {
    let spec = Workload::Mysql.spec(false);
    let plain = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, 42, 120_000)).unwrap().run();

    let mut recorder = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, 42, 120_000)).unwrap();
    let (sink, stream) = log_channel(8);
    recorder.stream_to(sink);
    let consumer = std::thread::spawn(move || stream.into_log());
    let streamed = recorder.run();
    let side_channel = consumer.join().unwrap();

    assert_eq!(plain.log.to_bytes(), streamed.log.to_bytes());
    assert_eq!(side_channel.to_bytes(), streamed.log.to_bytes());
    assert_eq!(plain.final_digest, streamed.final_digest);
}

/// Streaming and sequential pipelines produce byte-identical reports on a
/// benign run.
#[test]
fn benign_pipeline_streaming_matches_sequential() {
    let run = |streaming: bool| {
        let spec = Workload::Mysql.spec(false);
        let cfg = PipelineConfig { duration_insns: 250_000, streaming, ..PipelineConfig::default() };
        Pipeline::new(spec, cfg).run().unwrap()
    };
    let streamed = run(true);
    let sequential = run(false);
    assert_eq!(streamed.to_json(), sequential.to_json());
    assert_eq!(streamed.record.cycles, sequential.record.cycles);
    assert_eq!(streamed.replay.cycles, sequential.replay.cycles);
}

/// On the mounted kernel-ROP attack, every host-side strategy — sequential
/// phases, a bigger AR pool, no decode cache — reproduces the default
/// (streaming) report exactly, verdicts and detection window included.
#[test]
fn attack_pipeline_equivalent_across_configs() {
    let base_cfg = PipelineConfig {
        duration_insns: 900_000,
        checkpoint_interval_secs: Some(0.125),
        ..PipelineConfig::default()
    };
    let run = |cfg: PipelineConfig| {
        let (spec, _plan) = mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000).unwrap();
        Pipeline::new(spec, cfg).run().unwrap()
    };
    let base = run(base_cfg.clone());
    assert!(base.attacks_confirmed() >= 1);
    assert!(base.detection.is_some());

    let sequential =
        run(PipelineConfig { streaming: false, parallel_alarm_replay: false, ..base_cfg.clone() });
    assert_eq!(base.to_json(), sequential.to_json(), "sequential record+replay diverged");

    let pooled = run(PipelineConfig { ar_workers: 4, ..base_cfg.clone() });
    assert_eq!(base.to_json(), pooled.to_json(), "AR pool size changed the report");

    let no_cache = run(PipelineConfig { decode_cache: false, ..base_cfg });
    assert_eq!(base.to_json(), no_cache.to_json(), "decode cache changed the report");
}

/// The decode cache changes nothing a benign pipeline can observe: digest
/// verification passes and the report (cycles, alarm resolutions) is
/// bit-identical with the cache off.
#[test]
fn benign_pipeline_decode_cache_equivalent() {
    let run = |decode_cache: bool| {
        let spec = Workload::Radiosity.spec(false);
        let cfg = PipelineConfig { duration_insns: 200_000, decode_cache, ..PipelineConfig::default() };
        Pipeline::new(spec, cfg).run().unwrap()
    };
    let cached = run(true);
    let plain = run(false);
    assert!(cached.replay.verified);
    assert_eq!(cached.to_json(), plain.to_json());
}

/// `Arc`-shared logs replay without copies: two replayers can hold the same
/// recording concurrently.
#[test]
fn shared_log_supports_concurrent_replayers() {
    let spec = Workload::Fileio.spec(false);
    let rec = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, 7, 100_000)).unwrap().run();
    let digest = rec.final_digest;
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let log = Arc::clone(&rec.log);
            let spec = &spec;
            scope.spawn(move || {
                let mut r = rnr_replay::Replayer::new(spec, log, rnr_replay::ReplayConfig::default());
                r.verify_against(digest);
                assert_eq!(r.run().unwrap().verified, Some(true));
            });
        }
    });
}
