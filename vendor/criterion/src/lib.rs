//! Minimal offline stand-in for `criterion`.
//!
//! Runs each registered benchmark for a short, fixed wall-clock window and
//! prints mean time per iteration. No statistics, plots, or baselines —
//! just enough to keep `cargo bench` useful for spotting order-of-magnitude
//! regressions offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How batched inputs are sized (API-compatible subset).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup { _criterion: self, throughput: None }
    }
}

/// A named collection of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates per-iteration throughput (printed alongside timings).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the sample count (accepted for API compatibility; the stub's
    /// fixed measurement window makes it a no-op).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measures `f`.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher { total: Duration::ZERO, iters: 0 };
        f(&mut bencher);
        let per_iter = if bencher.iters > 0 { bencher.total / bencher.iters as u32 } else { Duration::ZERO };
        let rate = match (self.throughput, per_iter.as_nanos()) {
            (Some(Throughput::Bytes(b)), ns) if ns > 0 => {
                format!("  {:.1} MiB/s", b as f64 / (1 << 20) as f64 / (ns as f64 / 1e9))
            }
            (Some(Throughput::Elements(e)), ns) if ns > 0 => {
                format!("  {:.0} elem/s", e as f64 / (ns as f64 / 1e9))
            }
            _ => String::new(),
        };
        println!("  {name}: {per_iter:?}/iter ({} iters){rate}", bencher.iters);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Measurement window per benchmark.
const TARGET: Duration = Duration::from_millis(300);

/// Passed to each benchmark closure to drive timed iterations.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `f` until the measurement window closes.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        while start.elapsed() < TARGET {
            std::hint::black_box(f());
            self.iters += 1;
        }
        self.total = start.elapsed();
    }

    /// Times `routine` over inputs built by `setup` (setup time excluded).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let window = Instant::now();
        while window.elapsed() < TARGET {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Registers benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
