//! Minimal offline stand-in for `serde`.
//!
//! Uses a value-tree model (like `miniserde`): [`Serialize`] lowers a type
//! to a [`Value`] tree and [`Deserialize`] rebuilds it, with `serde_json`
//! (the sibling stub) handling text. The derive macros live in
//! `serde_derive` and generate externally-tagged enum encodings matching
//! upstream serde's JSON conventions, so session files and reports keep the
//! shape the real crate would produce.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error carrying `msg`.
    pub fn msg(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// A dynamically-typed serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object (insertion-ordered).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The string payload, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The entries, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object field lookup (`None` when absent or not an object).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

impl fmt::Display for Value {
    /// Compact JSON (matches what `serde_json::to_string` renders).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::U64(n) => write!(f, "{n}"),
            Value::I64(n) => write!(f, "{n}"),
            Value::F64(n) if n.is_finite() => write!(f, "{n:?}"),
            Value::F64(_) => write!(f, "null"),
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Object(entries) => {
                write!(f, "{{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Types lowerable to a [`Value`] tree.
pub trait Serialize {
    /// Lowers `self`.
    fn serialize_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds from `value`.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when `value` has the wrong shape.
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::msg(format!("expected {expected}, got {got:?}")))
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let v = value.as_u64().ok_or_else(|| Error::msg(format!(
                    concat!("expected ", stringify!($t), ", got {:?}"), value)))?;
                <$t>::try_from(v).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, usize);

impl Serialize for u64 {
    fn serialize_value(&self) -> Value {
        Value::U64(*self)
    }
}

impl Deserialize for u64 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value.as_u64().ok_or_else(|| Error::msg(format!("expected u64, got {value:?}")))
    }
}

macro_rules! ser_sint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::I64(v) } else { Value::U64(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let v = value.as_i64().ok_or_else(|| Error::msg(format!(
                    concat!("expected ", stringify!($t), ", got {:?}"), value)))?;
                <$t>::try_from(v).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

ser_sint!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::msg(format!("expected f64, got {value:?}")))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(f64::deserialize_value(value)? as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| Error::msg(format!("expected bool, got {value:?}")))
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg(format!("expected string, got {value:?}")))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let s = value.as_str().ok_or_else(|| Error::msg("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => type_err("char", value),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        T::deserialize_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize_value(value)?;
        <[T; N]>::try_from(items).map_err(|v| Error::msg(format!("expected {N} elements, got {}", v.len())))
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| Error::msg("expected tuple array"))?;
                Ok(($($name::deserialize_value(
                    items.get($idx).ok_or_else(|| Error::msg("tuple too short"))?)?,)+))
            }
        }
    )*};
}

ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Renders a map key (JSON object keys must be strings).
fn key_to_string(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

/// Reparses a map key written by [`key_to_string`].
fn key_from_string(s: &str) -> Value {
    if let Ok(n) = s.parse::<u64>() {
        Value::U64(n)
    } else if let Ok(n) = s.parse::<i64>() {
        Value::I64(n)
    } else if s == "true" {
        Value::Bool(true)
    } else if s == "false" {
        Value::Bool(false)
    } else {
        Value::String(s.to_string())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (key_to_string(&k.serialize_value()), v.serialize_value())).collect();
        // Deterministic output regardless of hash iteration order.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let obj = value.as_object().ok_or_else(|| Error::msg("expected object map"))?;
        obj.iter()
            .map(|(k, v)| Ok((K::deserialize_value(&key_from_string(k))?, V::deserialize_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter().map(|(k, v)| (key_to_string(&k.serialize_value()), v.serialize_value())).collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        let obj = value.as_object().ok_or_else(|| Error::msg("expected object map"))?;
        obj.iter()
            .map(|(k, v)| Ok((K::deserialize_value(&key_from_string(k))?, V::deserialize_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// Support code used by the generated derive impls (not public API).
pub mod __private {
    pub use super::{Deserialize, Error, Serialize, Value};

    /// Looks up `key` in a derived struct's object, treating a missing key
    /// as `Null` (lenient, like `#[serde(default)]` for options).
    pub fn field<'v>(value: &'v Value, key: &str) -> &'v Value {
        static NULL: Value = Value::Null;
        value.get(key).unwrap_or(&NULL)
    }

    /// Fails unless `value` is an object.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] naming `ty` otherwise.
    pub fn want_object(value: &Value, ty: &str) -> Result<(), Error> {
        if value.as_object().is_some() {
            Ok(())
        } else {
            Err(Error::msg(format!("expected object for {ty}, got {value:?}")))
        }
    }
}
