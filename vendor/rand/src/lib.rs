//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides a seeded [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64)
//! plus the [`Rng`]/[`SeedableRng`] trait surface this workspace uses
//! (`gen`, `gen_range` over half-open and inclusive integer ranges). The
//! stream differs from upstream `rand`, but every consumer in this
//! workspace only requires *seeded determinism*, not a particular stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// The next 64 uniformly-distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's full output range.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u64() as u32
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        rng.next_u64() as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy {
    /// Widens to `u64` for arithmetic.
    fn to_u64(self) -> u64;
    /// Narrows from `u64` (the value is always in range).
    fn from_u64(v: u64) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> $t {
                v as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "gen_range on an empty range");
        T::from_u64(lo + rng.next_u64() % (hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "gen_range on an empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + rng.next_u64() % (span + 1))
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A seeded xoshiro256++ generator (stands in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng { s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = r.gen_range(5..=5);
            assert_eq!(w, 5);
            let b: u8 = r.gen_range(0x20..0x7f);
            assert!((0x20..0x7f).contains(&b));
        }
    }
}
