//! Derive macros for the offline `serde` stand-in.
//!
//! Generates `Serialize`/`Deserialize` impls against serde's value-tree
//! model without `syn`/`quote`: the input item is re-lexed from its token
//! stream's string form, which is sufficient because the workspace uses no
//! `#[serde(...)]` attributes — only plain named-field structs, tuple
//! structs, and externally-tagged enums.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(&input.to_string());
    item.serialize_impl().parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = Item::parse(&input.to_string());
    item.deserialize_impl().parse().expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Lexing

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Lifetime(String),
    Literal(String),
    Punct(char),
}

fn lex(src: &str) -> Vec<Tok> {
    let mut toks = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '/' && chars.get(i + 1) == Some(&'/') {
            // Line comment (doc comments surface verbatim in the token
            // stream's string form).
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
            i += 2;
            while i + 1 < chars.len() && !(chars[i] == '*' && chars[i + 1] == '/') {
                i += 1;
            }
            i = (i + 2).min(chars.len());
        } else if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            toks.push(Tok::Ident(chars[start..i].iter().collect()));
        } else if c == '"' {
            // String literal (appears only inside stripped attributes).
            let start = i;
            i += 1;
            while i < chars.len() && chars[i] != '"' {
                if chars[i] == '\\' {
                    i += 1;
                }
                i += 1;
            }
            i += 1;
            toks.push(Tok::Literal(chars[start..i.min(chars.len())].iter().collect()));
        } else if c == '\'' {
            // Lifetime ('a) or char literal ('x') — char literals only occur
            // inside attributes, which the parser strips wholesale.
            if i + 1 < chars.len()
                && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_')
                && !(i + 2 < chars.len() && chars[i + 2] == '\'')
            {
                let start = i;
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok::Lifetime(chars[start..i].iter().collect()));
            } else {
                // Char literal: skip to the closing quote.
                let start = i;
                i += 1;
                while i < chars.len() && chars[i] != '\'' {
                    if chars[i] == '\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i += 1;
                toks.push(Tok::Literal(chars[start..i.min(chars.len())].iter().collect()));
            }
        } else {
            toks.push(Tok::Punct(c));
            i += 1;
        }
    }
    toks
}

fn depth_delta(t: &Tok) -> i32 {
    match t {
        Tok::Punct('(' | '[' | '{' | '<') => 1,
        Tok::Punct(')' | ']' | '}' | '>') => -1,
        _ => 0,
    }
}

/// Splits `toks` at top-level commas (all bracket kinds tracked).
fn split_commas(toks: &[Tok]) -> Vec<&[Tok]> {
    let mut parts = Vec::new();
    let mut depth = 0;
    let mut start = 0;
    for (i, t) in toks.iter().enumerate() {
        depth += depth_delta(t);
        if depth == 0 && *t == Tok::Punct(',') {
            parts.push(&toks[start..i]);
            start = i + 1;
        }
    }
    if start < toks.len() {
        parts.push(&toks[start..]);
    }
    parts
}

/// Drops leading `#[...]` attribute groups and `pub`/`pub(...)` qualifiers.
fn strip_prefix_noise(mut toks: &[Tok]) -> &[Tok] {
    loop {
        match toks {
            [Tok::Punct('#'), Tok::Punct('['), rest @ ..] => {
                let mut depth = 1;
                let mut i = 0;
                while i < rest.len() && depth > 0 {
                    match rest[i] {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => depth -= 1,
                        _ => {}
                    }
                    i += 1;
                }
                toks = &rest[i..];
            }
            [Tok::Ident(kw), Tok::Punct('('), rest @ ..] if kw == "pub" => {
                let mut depth = 1;
                let mut i = 0;
                while i < rest.len() && depth > 0 {
                    match rest[i] {
                        Tok::Punct('(') => depth += 1,
                        Tok::Punct(')') => depth -= 1,
                        _ => {}
                    }
                    i += 1;
                }
                toks = &rest[i..];
            }
            [Tok::Ident(kw), rest @ ..] if kw == "pub" => toks = rest,
            _ => return toks,
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing

#[derive(Debug)]
enum Fields {
    Unit,
    /// Tuple fields (only the arity matters).
    Tuple(usize),
    /// Named field identifiers in declaration order.
    Named(Vec<String>),
}

#[derive(Debug)]
struct Item {
    name: String,
    /// Generic parameter list verbatim (with bounds), e.g. `'a, T: Clone`.
    impl_generics: String,
    /// Generic argument list (names only), e.g. `'a, T`.
    ty_generics: String,
    /// Type parameter names needing `Serialize`/`Deserialize` bounds.
    type_params: Vec<String>,
    kind: ItemKind,
}

#[derive(Debug)]
enum ItemKind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

impl Item {
    fn parse(src: &str) -> Item {
        let toks = lex(src);
        let toks = strip_prefix_noise(&toks);
        let (is_enum, rest) = match toks {
            [Tok::Ident(kw), rest @ ..] if kw == "struct" => (false, rest),
            [Tok::Ident(kw), rest @ ..] if kw == "enum" => (true, rest),
            other => panic!("serde derive: expected struct or enum, got {other:?}"),
        };
        let (name, mut rest) = match rest {
            [Tok::Ident(n), rest @ ..] => (n.clone(), rest),
            other => panic!("serde derive: expected item name, got {other:?}"),
        };

        let mut impl_generics = String::new();
        let mut ty_generics = String::new();
        let mut type_params = Vec::new();
        if let [Tok::Punct('<'), after @ ..] = rest {
            let mut depth = 1;
            let mut i = 0;
            while i < after.len() && depth > 0 {
                depth += depth_delta(&after[i]);
                if depth > 0 {
                    i += 1;
                }
            }
            let params = &after[..i];
            rest = &after[i + 1..];
            impl_generics = render(params);
            let names: Vec<String> = split_commas(params)
                .iter()
                .filter_map(|p| match p.first() {
                    Some(Tok::Lifetime(l)) => Some(l.clone()),
                    Some(Tok::Ident(kw)) if kw == "const" => match p.get(1) {
                        Some(Tok::Ident(n)) => Some(n.clone()),
                        _ => None,
                    },
                    Some(Tok::Ident(n)) => {
                        type_params.push(n.clone());
                        Some(n.clone())
                    }
                    _ => None,
                })
                .collect();
            ty_generics = names.join(", ");
        }

        let kind = if is_enum {
            let body = brace_body(rest);
            let variants = split_commas(body)
                .into_iter()
                .map(|v| {
                    let v = strip_prefix_noise(v);
                    let name = match v.first() {
                        Some(Tok::Ident(n)) => n.clone(),
                        other => panic!("serde derive: expected variant name, got {other:?}"),
                    };
                    let fields = match v.get(1) {
                        Some(Tok::Punct('{')) => Fields::Named(named_field_names(&v[2..v.len() - 1])),
                        Some(Tok::Punct('(')) => Fields::Tuple(split_commas(&v[2..v.len() - 1]).len()),
                        // `Variant = disc` or bare `Variant`.
                        _ => Fields::Unit,
                    };
                    (name, fields)
                })
                .collect();
            ItemKind::Enum(variants)
        } else {
            match rest.first() {
                Some(Tok::Punct('{')) => {
                    let body = brace_body(rest);
                    ItemKind::Struct(Fields::Named(named_field_names(body)))
                }
                Some(Tok::Punct('(')) => {
                    let mut depth = 0;
                    let close = rest
                        .iter()
                        .position(|t| {
                            depth += depth_delta(t);
                            depth == 0
                        })
                        .expect("unclosed tuple struct");
                    ItemKind::Struct(Fields::Tuple(split_commas(&rest[1..close]).len()))
                }
                _ => ItemKind::Struct(Fields::Unit),
            }
        };
        Item { name, impl_generics, ty_generics, type_params, kind }
    }

    fn impl_header(&self, trait_name: &str) -> String {
        let bounds: Vec<String> =
            self.type_params.iter().map(|p| format!("{p}: ::serde::{trait_name}")).collect();
        let where_clause =
            if bounds.is_empty() { String::new() } else { format!(" where {}", bounds.join(", ")) };
        if self.impl_generics.is_empty() {
            format!("impl ::serde::{trait_name} for {}{where_clause}", self.name)
        } else {
            format!(
                "impl<{}> ::serde::{trait_name} for {}<{}>{where_clause}",
                self.impl_generics, self.name, self.ty_generics
            )
        }
    }

    fn serialize_impl(&self) -> String {
        let body = match &self.kind {
            ItemKind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
            ItemKind::Struct(Fields::Tuple(1)) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
            ItemKind::Struct(Fields::Tuple(n)) => {
                let elems: Vec<String> =
                    (0..*n).map(|i| format!("::serde::Serialize::serialize_value(&self.{i})")).collect();
                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
            }
            ItemKind::Struct(Fields::Named(fields)) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::serialize_value(&self.{f}))"))
                    .collect();
                format!("::serde::Value::Object(vec![{}])", entries.join(", "))
            }
            ItemKind::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|(v, fields)| {
                        let name = &self.name;
                        match fields {
                            Fields::Unit => format!(
                                "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),"
                            ),
                            Fields::Tuple(1) => format!(
                                "{name}::{v}(f0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Serialize::serialize_value(f0))]),"
                            ),
                            Fields::Tuple(n) => {
                                let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                                let elems: Vec<String> = (0..*n)
                                    .map(|i| format!("::serde::Serialize::serialize_value(f{i})"))
                                    .collect();
                                format!(
                                    "{name}::{v}({}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                                    binds.join(", "),
                                    elems.join(", ")
                                )
                            }
                            Fields::Named(fs) => {
                                let binds = fs.join(", ");
                                let entries: Vec<String> = fs
                                    .iter()
                                    .map(|f| {
                                        format!("(\"{f}\".to_string(), ::serde::Serialize::serialize_value({f}))")
                                    })
                                    .collect();
                                format!(
                                    "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                                    entries.join(", ")
                                )
                            }
                        }
                    })
                    .collect();
                format!("match self {{ {} }}", arms.join(" "))
            }
        };
        format!(
            "{} {{ fn serialize_value(&self) -> ::serde::Value {{ {body} }} }}",
            self.impl_header("Serialize")
        )
    }

    fn deserialize_impl(&self) -> String {
        let name = &self.name;
        let body = match &self.kind {
            ItemKind::Struct(Fields::Unit) => format!("Ok({name})"),
            ItemKind::Struct(Fields::Tuple(1)) => {
                format!("Ok({name}(::serde::Deserialize::deserialize_value(value)?))")
            }
            ItemKind::Struct(Fields::Tuple(n)) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::deserialize_value(items.get({i}).unwrap_or(&::serde::Value::Null))?"
                        )
                    })
                    .collect();
                format!(
                    "let items = value.as_array().ok_or_else(|| ::serde::Error::msg(\"expected array for {name}\"))?; Ok({name}({}))",
                    elems.join(", ")
                )
            }
            ItemKind::Struct(Fields::Named(fields)) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::deserialize_value(::serde::__private::field(value, \"{f}\")).map_err(|e| ::serde::Error::msg(format!(\"{name}.{f}: {{e}}\")))?,"
                        )
                    })
                    .collect();
                format!(
                    "::serde::__private::want_object(value, \"{name}\")?; Ok({name} {{ {} }})",
                    inits.join(" ")
                )
            }
            ItemKind::Enum(variants) => {
                let unit_arms: Vec<String> = variants
                    .iter()
                    .filter(|(_, f)| matches!(f, Fields::Unit))
                    .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                    .collect();
                let tagged_arms: Vec<String> = variants
                    .iter()
                    .map(|(v, fields)| match fields {
                        Fields::Unit => format!("\"{v}\" => Ok({name}::{v}),"),
                        Fields::Tuple(1) => format!(
                            "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::deserialize_value(inner)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::deserialize_value(items.get({i}).unwrap_or(&::serde::Value::Null))?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{v}\" => {{ let items = inner.as_array().ok_or_else(|| ::serde::Error::msg(\"expected array for {name}::{v}\"))?; Ok({name}::{v}({})) }}",
                                elems.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let inits: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::deserialize_value(::serde::__private::field(inner, \"{f}\"))?,"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{v}\" => Ok({name}::{v} {{ {} }}),",
                                inits.join(" ")
                            )
                        }
                    })
                    .collect();
                format!(
                    "match value {{ \
                        ::serde::Value::String(s) => match s.as_str() {{ {} _ => Err(::serde::Error::msg(format!(\"unknown {name} variant {{s}}\"))) }}, \
                        ::serde::Value::Object(entries) if entries.len() == 1 => {{ \
                            let (tag, inner) = &entries[0]; let _ = inner; \
                            match tag.as_str() {{ {} _ => Err(::serde::Error::msg(format!(\"unknown {name} variant {{tag}}\"))) }} \
                        }}, \
                        other => Err(::serde::Error::msg(format!(\"expected {name}, got {{other:?}}\"))) \
                    }}",
                    unit_arms.join(" "),
                    tagged_arms.join(" ")
                )
            }
        };
        format!(
            "{} {{ fn deserialize_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{ {body} }} }}",
            self.impl_header("Deserialize")
        )
    }
}

/// The tokens inside the outermost `{ ... }` of `toks`.
fn brace_body(toks: &[Tok]) -> &[Tok] {
    let open = toks.iter().position(|t| *t == Tok::Punct('{')).expect("expected braced body");
    let mut depth = 0;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return &toks[open + 1..i];
                }
            }
            _ => {}
        }
    }
    panic!("unclosed braced body");
}

/// Field names from a named-field body (`a: T, pub b: U, ...`).
fn named_field_names(body: &[Tok]) -> Vec<String> {
    split_commas(body)
        .into_iter()
        .filter_map(|field| {
            let field = strip_prefix_noise(field);
            match field.first() {
                Some(Tok::Ident(n)) => Some(n.clone()),
                _ => None,
            }
        })
        .collect()
}

fn render(toks: &[Tok]) -> String {
    let mut out = String::new();
    for t in toks {
        if !out.is_empty() {
            out.push(' ');
        }
        match t {
            Tok::Ident(s) | Tok::Lifetime(s) | Tok::Literal(s) => out.push_str(s),
            Tok::Punct(c) => out.push(*c),
        }
    }
    out
}
