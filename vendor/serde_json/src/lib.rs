//! Minimal offline stand-in for `serde_json`: renders and parses the
//! [`Value`] tree of the sibling `serde` stub as JSON text.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

pub use serde::{Deserialize, Error, Serialize, Value};

/// Lowers any serializable value to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize_value()
}

/// Serializes to compact JSON.
///
/// # Errors
///
/// Infallible for this stand-in; the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&to_value(value), &mut out, None, 0);
    Ok(out)
}

/// Serializes to two-space-indented JSON.
///
/// # Errors
///
/// Infallible for this stand-in; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&to_value(value), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes to compact JSON bytes.
///
/// # Errors
///
/// Infallible for this stand-in; the `Result` mirrors the real API.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Fails on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser { src: s.as_bytes(), pos: 0 }.parse_document()?;
    T::deserialize_value(&value)
}

/// Parses JSON bytes into any deserializable type.
///
/// # Errors
///
/// Fails on invalid UTF-8, malformed JSON, or a shape mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    from_str(std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid utf-8: {e}")))?)
}

/// Builds a [`Value`] from JSON-ish literal syntax (object/array forms with
/// expression values — the subset the workspace uses).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::to_value(&$value)) ),* ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$value) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------------
// Rendering

fn render(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(n) => {
            if n.is_finite() {
                // `{:?}` keeps a decimal point on round floats ("1.0"), so
                // numbers re-parse as floats, matching serde_json.
                let _ = write!(out, "{n:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => render_string(s, out),
        Value::Array(items) => render_seq(out, indent, level, items.is_empty(), '[', ']', |out| {
            for (i, item) in items.iter().enumerate() {
                sep(out, indent, level + 1, i > 0);
                render(item, out, indent, level + 1);
            }
        }),
        Value::Object(entries) => render_seq(out, indent, level, entries.is_empty(), '{', '}', |out| {
            for (i, (k, item)) in entries.iter().enumerate() {
                sep(out, indent, level + 1, i > 0);
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, out, indent, level + 1);
            }
        }),
    }
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    empty: bool,
    open: char,
    close: char,
    body: impl FnOnce(&mut String),
) {
    out.push(open);
    if empty {
        out.push(close);
        return;
    }
    body(out);
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(close);
}

fn sep(out: &mut String, indent: Option<usize>, level: usize, comma: bool) {
    if comma {
        out.push(',');
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn parse_document(&mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.src.len() {
            return Err(Error::msg(format!("trailing bytes at offset {}", self.pos)));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.src.get(self.pos) {
            if b" \t\r\n".contains(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.src.get(self.pos).copied().ok_or_else(|| Error::msg("unexpected end of JSON"))
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Value::String(self.parse_string()?)),
            b't' | b'f' | b'n' => {
                if self.eat_word("true") {
                    Ok(Value::Bool(true))
                } else if self.eat_word("false") {
                    Ok(Value::Bool(false))
                } else if self.eat_word("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::msg(format!("bad literal at offset {}", self.pos)))
                }
            }
            _ => self.parse_number(),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            let key = self.parse_string()?;
            self.eat(b':')?;
            entries.push((key, self.parse_value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => return Err(Error::msg(format!("expected `,` or `}}`, got `{}`", other as char))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error::msg(format!("expected `,` or `]`, got `{}`", other as char))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.src.get(self.pos).ok_or_else(|| Error::msg("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.src.get(self.pos).ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .src
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("short \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(Error::msg(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Re-sync to a char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.src.len() && self.src[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.src[start..end])
                        .map_err(|e| Error::msg(format!("invalid utf-8 in string: {e}")))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(b) = self.src.get(self.pos) {
            if b.is_ascii_digit() || b"+-.eE".contains(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).map_err(|_| Error::msg("bad number"))?;
        if text.is_empty() {
            return Err(Error::msg(format!("expected value at offset {start}")));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_structure() {
        let v = json!({
            "a": 1u64,
            "b": -2i64,
            "c": 1.5f64,
            "s": "hi \"there\"\n",
            "arr": vec![1u64, 2, 3],
            "none": Option::<u64>::None,
        });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["a"].as_u64(), Some(1));
        assert_eq!(back["s"].as_str(), Some("hi \"there\"\n"));
        assert_eq!(back["arr"][2].as_u64(), Some(3));
        assert_eq!(back["none"], Value::Null);
    }

    #[test]
    fn floats_keep_their_point() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        let back: f64 = from_str(&text).unwrap();
        assert!((back - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("nulll").is_err());
    }
}
