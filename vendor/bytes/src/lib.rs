//! Minimal offline stand-in for the `bytes` crate.
//!
//! Implements exactly the subset of the real API this workspace uses:
//! [`Bytes`], [`BytesMut`], and the [`Buf`]/[`BufMut`] traits with
//! little-endian accessors. `Bytes` is a cheaply-cloneable view into a
//! shared buffer, as in the real crate.

#![forbid(unsafe_code)]

use std::ops::{Deref, Range};
use std::sync::Arc;

/// A cheaply cloneable, sliceable chunk of contiguous memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wraps a static slice (copied here; the distinction is irrelevant for
    /// this stand-in).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Bytes remaining in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of `range` (relative to this view).
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len(), "slice out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + range.start, end: self.start + range.end }
    }

    /// Splits off and returns the first `n` bytes, advancing `self` past
    /// them.
    ///
    /// # Panics
    ///
    /// Panics when `n > self.len()`.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = self.slice(0..n);
        self.start += n;
        head
    }

    /// Copies the view into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: Arc::from(v), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { inner: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

/// Read access to a byte cursor (the subset of `bytes::Buf` used here).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads the next byte.
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;

    /// True when bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.as_slice()[0];
        self.start += 1;
        b
    }

    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.as_slice()[..2].try_into().unwrap());
        self.start += 2;
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.as_slice()[..4].try_into().unwrap());
        self.start += 4;
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.as_slice()[..8].try_into().unwrap());
        self.start += 8;
        v
    }
}

/// Write access to a byte buffer (the subset of `bytes::BufMut` used here).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);

    /// Appends a slice.
    fn put_slice(&mut self, v: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.inner.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.inner.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.inner.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, v: &[u8]) {
        self.inner.extend_from_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_views() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_u16_le(0x1234);
        m.put_u32_le(0xdead_beef);
        m.put_u64_le(42);
        m.put_slice(&[1, 2, 3]);
        let mut b = m.freeze();
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 3);
        let whole = b.clone();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 0x1234);
        assert_eq!(b.get_u32_le(), 0xdead_beef);
        assert_eq!(b.get_u64_le(), 42);
        assert_eq!(b.split_to(2).to_vec(), vec![1, 2]);
        assert_eq!(b.remaining(), 1);
        assert!(b.has_remaining());
        assert_eq!(whole.slice(0..1).to_vec(), vec![7]);
    }
}
