//! Minimal offline stand-in for `proptest`.
//!
//! Provides seeded random-input testing with the subset of the proptest API
//! this workspace uses: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`, ranges and tuples as strategies, [`prop_oneof!`] (weighted),
//! `prop::collection::vec`, `prop::sample`, `option::of`, `any`, and
//! [`test_runner::TestRunner`]. No shrinking: a failing case reports the
//! exact input that failed (runs are deterministic, so it reproduces).

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator for test inputs (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Integer types usable in range strategies and [`any`].
pub trait ArbitraryInt: Copy {
    /// Widens to `u64`.
    fn to_u64(self) -> u64;
    /// Narrows from `u64`.
    fn from_u64(v: u64) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> $t {
                v as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ArbitraryInt> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "empty range strategy");
        T::from_u64(lo.wrapping_add(rng.below(hi.wrapping_sub(lo))))
    }
}

impl<T: ArbitraryInt> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        let span = hi.wrapping_sub(lo);
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo.wrapping_add(rng.below(span + 1)))
    }
}

macro_rules! strategy_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

strategy_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Builds it.
    fn arbitrary() -> Self::Strategy;
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy behind [`any`] for primitives.
#[derive(Debug, Clone, Default)]
pub struct AnyPrim<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_prim {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrim(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrim<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrim<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrim(std::marker::PhantomData)
    }
}

/// A weighted union of strategies (what [`prop_oneof!`] builds).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// A union over weighted boxed arms.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty or all weights are zero.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(arms.iter().map(|(w, _)| *w as u64).sum::<u64>() > 0, "prop_oneof needs weight");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum checked in constructor")
    }
}

/// Chooses between strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A size specification: fixed or ranged.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.hi > self.size.lo {
                self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize
            } else {
                self.size.lo
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{AnyPrim, Arbitrary, Strategy, TestRng};

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// This index, reduced into `[0, len)`.
        ///
        /// # Panics
        ///
        /// Panics when `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Strategy for AnyPrim<Index> {
        type Value = Index;
        fn generate(&self, rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }

    impl Arbitrary for Index {
        type Strategy = AnyPrim<Index>;
        fn arbitrary() -> Self::Strategy {
            AnyPrim(std::marker::PhantomData)
        }
    }

    /// See [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// A strategy drawing uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics (at generation time) when `options` is empty.
    pub fn select<T: Clone + 'static>(options: Vec<T>) -> Select<T> {
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// A strategy producing `None` about a quarter of the time, `Some`
    /// otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Test-execution configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
    /// Base RNG seed (cases perturb it deterministically).
    pub seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256, seed: 0x524e_5253_4146_4531 }
    }
}

/// Test-runner types.
pub mod test_runner {
    pub use super::{ProptestConfig, TestCaseError, TestRunner};
    /// Config alias, as re-exported by the real crate.
    pub type Config = ProptestConfig;
}

/// A failed test case (from `prop_assert!` or an explicit rejection).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }

    /// A rejected (filtered-out) case, treated as a skip.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: format!("rejected: {}", msg.into()) }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

/// Drives a strategy through many random cases.
#[derive(Debug, Clone, Default)]
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// A runner with `config`.
    pub fn new(config: ProptestConfig) -> TestRunner {
        TestRunner { config }
    }

    /// Runs `test` against `cases` random draws from `strategy`.
    ///
    /// # Errors
    ///
    /// Returns the first failure, annotated with the input that caused it.
    pub fn run<S: Strategy>(
        &mut self,
        strategy: &S,
        test: impl Fn(S::Value) -> Result<(), TestCaseError>,
    ) -> Result<(), String>
    where
        S::Value: Debug + Clone,
    {
        for case in 0..self.config.cases {
            let mut rng = TestRng::new(self.config.seed.wrapping_add(0x1000 * case as u64));
            let input = strategy.generate(&mut rng);
            if let Err(e) = test(input.clone()) {
                return Err(format!("case {case} failed: {e}\ninput: {input:#?}"));
            }
        }
        Ok(())
    }
}

/// Asserts inside a proptest closure, returning a failure instead of
/// panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a proptest closure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{}: {:?} != {:?}", format!($($fmt)*), l, r);
    }};
}

/// Inequality assertion inside a proptest closure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new($config);
            let result = runner.run(&($($strat,)+), |($($arg,)+)| {
                $body
                Ok(())
            });
            if let Err(e) = result {
                panic!("{}", e);
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

/// The common imports, like `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection as prop_collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// The `prop::` module path used in strategy expressions.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let mut runner = crate::TestRunner::default();
        runner
            .run(&(0u64..10, 5u8..=6).prop_map(|(a, b)| (a, b)), |(a, b)| {
                prop_assert!(a < 10);
                prop_assert!(b == 5 || b == 6);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn oneof_honors_weights() {
        let strat = prop_oneof![10 => Just(1u32), 1 => Just(2u32)];
        let mut rng = crate::TestRng::new(7);
        let draws: Vec<u32> = (0..200).map(|_| crate::Strategy::generate(&strat, &mut rng)).collect();
        let ones = draws.iter().filter(|&&v| v == 1).count();
        assert!(ones > 150, "weighted arm should dominate, got {ones}/200");
        assert!(draws.contains(&2), "light arm must still appear");
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_form_compiles_and_runs(v in prop::collection::vec(any::<u8>(), 0..10), pick in any::<prop::sample::Index>()) {
            prop_assert!(v.len() < 10);
            if !v.is_empty() {
                let _ = v[pick.index(v.len())];
            }
        }
    }
}
