#!/usr/bin/env bash
# Local CI: format, lint, test. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

# The suite asserts serial-vs-parallel report identity and runs the fault
# matrix with span workers active; on a single-core host `cargo test` gets
# no real parallelism and the wall-clock claims go unexercised. Refuse
# unless explicitly overridden.
cores="$(nproc)"
if [ "$cores" -lt 2 ] && [ "${RNR_ALLOW_SINGLE_CORE:-0}" != "1" ]; then
    echo "check.sh: only $cores core available; parallel span replay needs >= 2" >&2
    echo "check.sh: set RNR_ALLOW_SINGLE_CORE=1 to run anyway" >&2
    exit 1
fi

cargo fmt --all --check
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo test --workspace -q --offline

# Fault-matrix gate: run the attack pipeline under every seeded fault
# scenario. Fails if any recoverable scenario's report differs from the
# fault-free run (or shows no recovery activity), or if the unrecoverable
# scenario does anything but fail with a structured error.
cargo run --release -q -p rnr-bench --bin fault_matrix --offline

# Same matrix with checkpoint-partitioned span replay active: every
# scenario must heal to a report byte-identical to a clean parallel run.
cargo run --release -q -p rnr-bench --bin fault_matrix --offline -- --parallel

# Perf gate: rerun the attack-pipeline comparison and fail if the baseline
# and optimized reports diverge, or if the speedup regresses >10% below the
# committed BENCH_pipeline.json figure. Never rewrites the committed file.
cargo run --release -q -p rnr-bench --bin pipeline_speed --offline -- --check
