#!/usr/bin/env bash
# Local CI: format, lint, test. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo test --workspace -q --offline

# Fault-matrix gate: run the attack pipeline under every seeded fault
# scenario. Fails if any recoverable scenario's report differs from the
# fault-free run (or shows no recovery activity), or if the unrecoverable
# scenario does anything but fail with a structured error.
cargo run --release -q -p rnr-bench --bin fault_matrix --offline

# Perf gate: rerun the attack-pipeline comparison and fail if the baseline
# and optimized reports diverge, or if the speedup regresses >10% below the
# committed BENCH_pipeline.json figure. Never rewrites the committed file.
cargo run --release -q -p rnr-bench --bin pipeline_speed --offline -- --check
