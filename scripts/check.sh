#!/usr/bin/env bash
# Local CI: format, lint, test. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

# The suite asserts serial-vs-parallel report identity and runs the fault
# matrix with span workers active; on a single-core host `cargo test` gets
# no real parallelism and the wall-clock claims go unexercised. Refuse
# unless explicitly overridden.
cores="$(nproc)"
if [ "$cores" -lt 2 ] && [ "${RNR_ALLOW_SINGLE_CORE:-0}" != "1" ]; then
    echo "check.sh: only $cores core available; parallel span replay needs >= 2" >&2
    echo "check.sh: set RNR_ALLOW_SINGLE_CORE=1 to run anyway" >&2
    exit 1
fi

# Per-gate wall-clock accounting: every gate runs under `timed <name> cmd…`
# and a summary table prints at the end (also on failure, so a hung or slow
# gate is identifiable from the partial table).
gate_names=()
gate_secs=()
timed() {
    local name="$1"
    shift
    local start end
    start=$(date +%s.%N)
    "$@"
    end=$(date +%s.%N)
    gate_names+=("$name")
    gate_secs+=("$(echo "$end $start" | awk '{printf "%.1f", $1 - $2}')")
}
summary() {
    echo
    echo "check.sh gate wall-clock:"
    local i total=0
    for i in "${!gate_names[@]}"; do
        printf '  %-22s %8ss\n' "${gate_names[$i]}" "${gate_secs[$i]}"
        total=$(echo "$total ${gate_secs[$i]}" | awk '{printf "%.1f", $1 + $2}')
    done
    printf '  %-22s %8ss\n' "total" "$total"
}
trap summary EXIT

timed fmt cargo fmt --all --check
timed clippy cargo clippy --workspace --all-targets --offline -- -D warnings

# Doc gate: every public item is documented (the crates set
# `#![warn(missing_docs)]`) and no rustdoc warning — broken intra-doc link,
# bad code-block language, ambiguous reference — lands on main.
timed doc env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

timed tests cargo test --workspace -q --offline

# Fault-matrix gate: run the attack pipeline under every seeded fault
# scenario — transport, replay, and AR-supervisor faults, plus the durable
# segment store's disk scenarios (torn write, bit rot, missing segment,
# short read, failed fsync, each forcing the CR's disk-first refetch).
# Fails if any recoverable scenario's report differs from the fault-free
# run (or shows no recovery activity), or if the unrecoverable scenario
# does anything but fail with a structured error. Ends with the two
# adversarial guests: the self-modifying JIT workload under the superblock
# trace engine, and the VRT-armed heap-overflow attack (conviction and
# false-positive dismissal must survive every knob and heal). Durable
# scenarios write to per-scenario temp dirs, removed on success.
timed fault-matrix cargo run --release -q -p rnr-bench --bin fault_matrix --offline

# Same matrix with checkpoint-partitioned span replay active: every
# scenario must heal to a report byte-identical to a clean parallel run.
timed fault-matrix-par cargo run --release -q -p rnr-bench --bin fault_matrix --offline -- --parallel

# Farm fault matrix: every seeded scenario as a two-session fleet on the
# shared worker pool. Replay/AR faults must heal byte-identically beside an
# undisturbed quiet sibling; transport scenarios must be inert (the farm
# records sequentially — there is no wire); budget exhaustion must fail
# its session with a typed error and leave the sibling untouched; a
# farm-owned durable root must lay down one segment store per session.
timed fault-matrix-farm cargo run --release -q -p rnr-bench --bin fault_matrix --offline -- --farm

# Perf gate: rerun the attack-pipeline comparison and fail if the reports
# diverge across configurations, or if either the overall speedup or the
# superblock trace engine's speedup over the block engine regresses >20%
# below the committed BENCH_pipeline.json figures. Never rewrites the
# committed file. Host-conditional gates print "gate skipped: <reason>"
# when this box cannot exercise them.
timed pipeline-speed cargo run --release -q -p rnr-bench --bin pipeline_speed --offline -- --check

# Fleet throughput gate: farm-vs-serial report identity always; the ≥1.3x
# fleet speedup floor applies on 4+ core hosts (skipped with a printed
# reason below that).
timed farm-speed cargo run --release -q -p rnr-bench --bin farm_speed --offline -- --check
