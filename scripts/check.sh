#!/usr/bin/env bash
# Local CI: format, lint, test. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo test --workspace -q --offline
