#!/usr/bin/env bash
# Local CI: format, lint, test. Run from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo test --workspace -q --offline

# Perf gate: rerun the attack-pipeline comparison and fail if the baseline
# and optimized reports diverge, or if the speedup regresses >10% below the
# committed BENCH_pipeline.json figure. Never rewrites the committed file.
cargo run --release -q -p rnr-bench --bin pipeline_speed --offline -- --check
