//! Umbrella crate for the RnR-Safe reproduction.
//!
//! This package exists to host workspace-level integration tests (`tests/`)
//! and runnable examples (`examples/`). Library users should depend on the
//! individual crates — start with [`rnr_safe`].
//!
//! See `README.md` for the repository tour and `DESIGN.md` for the mapping
//! from the paper's systems, tables, and figures to modules in this tree.

pub use rnr_attacks as attacks;
pub use rnr_guest as guest;
pub use rnr_hypervisor as hypervisor;
pub use rnr_isa as isa;
pub use rnr_log as log;
pub use rnr_machine as machine;
pub use rnr_ras as ras;
pub use rnr_replay as replay;
pub use rnr_safe as safe;
pub use rnr_workloads as workloads;
