//! Quickstart: record a workload, replay it deterministically, resolve its
//! alarms.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rnr_safe::{Pipeline, PipelineConfig};
use rnr_workloads::Workload;

fn main() -> Result<(), rnr_safe::PipelineError> {
    // Pick a workload (Table 3) and build its guest VM specification:
    // microkernel + user program + device-activity profile.
    let spec = Workload::Mysql.spec(false);

    // Run the whole RnR-Safe pipeline of Figure 1: monitored recording,
    // always-on checkpointing replay (verified bit-exact against the
    // recording), and an alarm replayer for anything the CR can't discard.
    let config = PipelineConfig { duration_insns: 500_000, ..PipelineConfig::default() };
    let report = Pipeline::new(spec, config).run()?;

    println!("workload:            {}", report.record.workload);
    println!(
        "recorded:            {} instructions in {} virtual cycles",
        report.record.retired, report.record.cycles
    );
    println!("input log:           {} bytes", report.record.log_bytes);
    println!("replay verified:     {}", report.replay.verified);
    println!(
        "replay cycles:       {} ({:.2}x of recording)",
        report.replay.cycles,
        report.replay.cycles as f64 / report.record.cycles as f64
    );
    println!("checkpoints taken:   {}", report.replay.checkpoints_taken);
    println!("alarms in log:       {}", report.record.alarms);
    println!("  cancelled by CR:   {}", report.replay.underflows_cancelled);
    println!("  escalated to AR:   {}", report.replay.alarms_escalated);
    println!("attacks confirmed:   {}", report.attacks_confirmed());
    println!("false positives:     {}", report.false_positives_resolved());

    assert!(report.replay.verified, "deterministic replay must verify");
    assert_eq!(report.attacks_confirmed(), 0, "a benign run must stay clean");
    println!("\nOK: benign execution recorded, replayed bit-exact, and cleared.");
    Ok(())
}
