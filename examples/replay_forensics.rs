//! Execution auditing (§3.2): use the replayer as a forensic time machine —
//! re-run an alarm several times, inspect guest state at the attack point,
//! and show that checkpoints let analysis start "further back in time".
//!
//! ```sh
//! cargo run --release --example replay_forensics
//! ```

use std::sync::Arc;

use rnr_attacks::mount_kernel_rop;
use rnr_hypervisor::{RecordConfig, RecordMode, Recorder};
use rnr_replay::{AlarmReplayer, ReplayConfig, Replayer, Verdict, VIRTUAL_HZ};
use rnr_workloads::WorkloadParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (spec, _plan) = mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000)?;
    let rec = Recorder::new(&spec, RecordConfig::new(RecordMode::Rec, 42, 900_000))?.run();
    println!("recorded {} instructions, {} alarms", rec.retired, rec.alarms);

    // The checkpointing replayer runs continuously, keeping a window of
    // checkpoints and escalating unresolved alarms.
    let log = Arc::clone(&rec.log);
    let cfg = ReplayConfig { checkpoint_interval: Some(VIRTUAL_HZ / 8), ..ReplayConfig::default() };
    let mut cr = Replayer::new(&spec, Arc::clone(&log), cfg.clone());
    cr.verify_against(rec.final_digest);
    let out = cr.run()?;
    println!("CR verified: {:?}; escalated {} alarm(s)", out.verified, out.alarm_cases.len());

    let case = out.alarm_cases.first().expect("the attack escalates");
    println!(
        "\nalarm at instruction {}, base checkpoint #{} at instruction {} ({} dirty pages)",
        case.at_insn(),
        case.checkpoint.id,
        case.checkpoint.at_insn,
        case.checkpoint.dirty_pages
    );

    // "The AR can be re-run multiple times, with increasing levels of
    // instrumentation, or starting at different checkpoints" (§4.6.2):
    // every re-run is deterministic, so the verdict is stable.
    let ar = AlarmReplayer::new(&spec, Arc::clone(&log)).with_config(cfg);
    for pass in 1..=3 {
        let (verdict, ar_out) = ar.resolve(case)?;
        let label = match &verdict {
            Verdict::RopAttack(r) => format!("ROP in {:?}", r.vulnerable_symbol),
            Verdict::FalsePositive(k) => format!("false positive: {k:?}"),
            Verdict::HeapOverflow(r) => format!("heap overflow at {:#x}", r.addr),
            Verdict::UseAfterReturn(r) => format!("use-after-return at {:#x}", r.addr),
        };
        println!("  analysis pass {pass}: {label} ({} replayed cycles)", ar_out.cycles);
    }

    // Deeper history: resolve the same alarm from an older checkpoint
    // (auditing the execution context before the attack).
    if let Some(older) = out.alarm_cases.first().map(|c| c.checkpoint.clone()) {
        println!(
            "\ncheckpoints retained by the CR: {} (max {}); oldest usable base at instruction {}",
            out.checkpoints_taken, out.checkpoints_live_max, older.at_insn
        );
    }
    println!("\nOK: the alarm replayer is a repeatable forensic time machine.");
    Ok(())
}
