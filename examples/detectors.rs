//! The other two rows of Table 1: JOP and DOS first-line detectors, both
//! following the RnR-Safe pattern — cheap imprecise hardware, replay-side
//! resolution.
//!
//! ```sh
//! cargo run --release --example detectors
//! ```

use rnr_attacks::{dos_control, dos_scenario, mount_jop, DosDetector};
use rnr_hypervisor::{RecordConfig, RecordMode, Recorder};
use rnr_replay::{resolve_jop, JopVerdict, ReplayConfig, Replayer};
use rnr_workloads::WorkloadParams;

fn main() {
    // --- JOP (Table 1, row 2) -------------------------------------------
    // The hardware tracks only the most common functions; a crafted packet
    // overwrites a dispatch pointer with a mid-function target, while
    // legitimate dispatches to an *uncommon* handler trip the imprecise
    // hardware too. The replayer sorts them out with the full table.
    let (spec, plan) = mount_jop(900_000);
    let mut rc = RecordConfig::new(RecordMode::Rec, 42, 700_000);
    rc.jop_common_functions = Some(plan.hw_table_limit);
    let rec = Recorder::new(&spec, rc).expect("spec ok").run();
    println!("JOP: hardware table of {} functions; {} alarms recorded", plan.hw_table_limit, rec.alarms);
    let out =
        Replayer::new(&spec, std::sync::Arc::clone(&rec.log), ReplayConfig::default()).run().expect("replay");
    let mut convicted = 0;
    for case in &out.jop_cases {
        match resolve_jop(&spec, case) {
            JopVerdict::JopAttack => {
                convicted += 1;
                println!(
                    "  CONVICTED: indirect call at {:#x} hijacked to mid-function {:#x}",
                    case.branch_pc, case.target
                );
            }
            JopVerdict::FalsePositive => {
                println!("  cleared:   legit dispatch to uncommon handler {:#x}", case.target);
            }
        }
    }
    assert!(convicted >= 1);

    // --- DOS (Table 1, row 3) -------------------------------------------
    // A malicious kernel thread disables interrupts and spins; the
    // context-switch watchdog notices the scheduler going quiet.
    let run = |spec: &rnr_hypervisor::VmSpec| {
        let mut rc = RecordConfig::new(RecordMode::Rec, 42, 1_500_000);
        rc.trace = 1; // keep switch timestamps
        Recorder::new(spec, rc).expect("spec ok").run()
    };
    let params = WorkloadParams::default();
    let attacked = run(&dos_scenario(&params, 600));
    let healthy = run(&dos_control(&params));

    let window = params.timer_period * 4;
    let alarm = DosDetector::new(window, 1).first_alarm(&attacked.switch_trace, attacked.cycles);
    let control = DosDetector::new(window, 1).first_alarm(&healthy.switch_trace, healthy.cycles);
    println!("\nDOS: watchdog window = {window} cycles, min 1 context switch");
    println!("  attacked guest:  {} switches, alarm at cycle {alarm:?}", attacked.switch_trace.len());
    println!("  healthy control: {} switches, alarm {control:?}", healthy.switch_trace.len());
    assert!(alarm.is_some() && control.is_none());
    println!("\nOK: both detectors behave as Table 1 describes.");
}
