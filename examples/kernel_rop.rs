//! The paper's §6 / Figure 10 scenario end to end: mount a remote kernel
//! ROP attack against the vulnerable server, detect it via a RAS
//! misprediction alarm, and characterize it with the alarm replayer.
//!
//! ```sh
//! cargo run --release --example kernel_rop
//! ```

use rnr_attacks::mount_kernel_rop;
use rnr_safe::{Pipeline, PipelineConfig, Verdict};
use rnr_workloads::WorkloadParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The attacker scans the kernel binary for gadgets and crafts a packet
    // that overflows the kernel's 128-byte message buffer (Figure 10),
    // chaining: pop r1; ret -> ld r9,[r1]; ret -> callr r9 -> grant_root.
    let (spec, plan) = mount_kernel_rop(&WorkloadParams::attack_demo(), 1_200_000)?;
    println!(
        "attack mounted: G1={:#x} G2={:#x} G3={:#x} -> grant_root={:#x}",
        plan.g1, plan.g2, plan.g3, plan.grant_root
    );

    let config = PipelineConfig {
        duration_insns: 900_000,
        checkpoint_interval_secs: Some(0.125),
        ..PipelineConfig::default()
    };
    let report = Pipeline::new(spec, config).run()?;

    println!("\nrecorded alarms: {}", report.record.alarms);
    println!("escalated to alarm replayers: {}", report.replay.alarms_escalated);
    println!("attacks confirmed: {}", report.attacks_confirmed());
    assert!(report.attacks_confirmed() >= 1, "the attack must be convicted");

    let attack = report.resolutions.iter().find(|r| r.verdict.is_attack()).expect("confirmed above");
    let Verdict::RopAttack(rop) = &attack.verdict else { unreachable!() };

    println!("\n--- attack characterization (the §6 questions) ---");
    println!(
        "HOW:  buffer overflow in {:?}, return hijacked to {:#x}",
        rop.vulnerable_symbol, rop.actual_target
    );
    println!("WHO:  thread {} (live threads at the attack: {:?})", rop.tid, rop.threads);
    println!("WHAT: decoded gadget chain from the corrupted stack:");
    for g in rop.gadget_chain.iter().take(6) {
        println!(
            "      [{:#x}] {:#018x}  {:<14} {}",
            g.stack_addr,
            g.value,
            g.symbol.as_deref().unwrap_or("-"),
            g.listing.as_deref().unwrap_or("(data)")
        );
    }
    println!(
        "state at the alarm point is unpolluted: priv_flag = {:#x} (it became {:#x} only because the demo lets the recorded VM continue)",
        rop.priv_flag_at_alarm, report.record.priv_flag
    );

    if let Some(w) = &report.detection {
        println!(
            "\ndetection window: {:.3} virtual seconds; log in window: {} bytes; checkpoints needed: {}",
            w.window_secs, w.log_bytes_in_window, w.checkpoints_needed
        );
    }
    Ok(())
}
